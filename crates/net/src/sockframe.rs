//! Socket framing: maps stack-to-stack wire frames onto real datagrams.
//!
//! The in-process hosts (`dpu-sim`, `dpu-runtime`) carry a `NetSend`'s
//! `(src, dst, payload)` out of band — the channel *is* the addressing.
//! A real-socket host (`dpu-reactor`) has only the datagram bytes, so
//! this module defines the one envelope that crosses a real wire:
//!
//! ```text
//! +-------+-----+-----+----------------+
//! | MAGIC | src | dst | payload (len-prefixed bytes)
//! +-------+-----+-----+----------------+
//! ```
//!
//! [`SockFrame`] is the envelope; [`FrameCodec`] owns a
//! [`WireScratch`] so steady-state encodes reuse buffers (the same
//! zero-copy discipline as the stack-internal path) and counts every
//! malformed datagram it refuses — socket input is untrusted, so decode
//! failures are *counted drops*, never panics.

use bytes::{Bytes, BytesMut};
use dpu_core::wire::{self, Decode, Encode, ScratchStats, WireError, WireResult, WireScratch};
use dpu_core::StackId;

/// Leading magic of every reactor datagram (`b"DPU0"` as a big-endian
/// integer). Rejects cross-talk from unrelated processes on the same
/// port range before any length field is trusted.
pub const MAGIC: u32 = 0x4450_5530;

/// The envelope of one datagram between two reactor-hosted stacks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SockFrame {
    /// Sending stack.
    pub src: StackId,
    /// Destination stack.
    pub dst: StackId,
    /// The stack-level wire frame, handed to
    /// [`dpu_core::host::StackDriver::inject`] unchanged on receive.
    pub payload: Bytes,
}

impl Encode for SockFrame {
    fn encode(&self, buf: &mut BytesMut) {
        MAGIC.encode(buf);
        self.src.encode(buf);
        self.dst.encode(buf);
        self.payload.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        MAGIC.encoded_len()
            + self.src.encoded_len()
            + self.dst.encoded_len()
            + self.payload.encoded_len()
    }
}

impl Decode for SockFrame {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let magic = u32::decode(buf)?;
        if magic != MAGIC {
            return Err(WireError::BadTag(magic));
        }
        Ok(SockFrame {
            src: StackId::decode(buf)?,
            dst: StackId::decode(buf)?,
            payload: Bytes::decode(buf)?,
        })
    }
}

/// Counters of one [`FrameCodec`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Frames encoded for sending.
    pub encoded: u64,
    /// Frames decoded successfully from received datagrams.
    pub decoded: u64,
    /// Received datagrams dropped because they failed to decode as a
    /// [`SockFrame`] (bad magic, truncation, corruption, trailing
    /// garbage). A real socket is open to arbitrary input; anything
    /// that is not a well-formed frame lands here instead of anywhere
    /// near a panic.
    pub malformed_dropped: u64,
}

/// A per-reactor frame codec: scratch-pooled encode, counted-drop
/// decode. Single-threaded (one per reactor loop), like the per-stack
/// [`WireScratch`] it wraps.
#[derive(Debug, Default)]
pub struct FrameCodec {
    scratch: WireScratch,
    stats: FrameStats,
}

impl FrameCodec {
    /// A fresh codec with an empty scratch pool.
    pub fn new() -> FrameCodec {
        FrameCodec::default()
    }

    /// Encode one outbound frame through the scratch pool. The produced
    /// bytes are exactly one datagram.
    pub fn encode(&mut self, src: StackId, dst: StackId, payload: &Bytes) -> Bytes {
        self.stats.encoded += 1;
        // Borrowing mirror of `SockFrame` so the payload is written
        // forward without constructing an owning envelope first.
        struct Out<'a>(StackId, StackId, &'a Bytes);
        impl Encode for Out<'_> {
            fn encode(&self, buf: &mut BytesMut) {
                MAGIC.encode(buf);
                self.0.encode(buf);
                self.1.encode(buf);
                self.2.encode(buf);
            }
            fn encoded_len(&self) -> usize {
                MAGIC.encoded_len()
                    + self.0.encoded_len()
                    + self.1.encoded_len()
                    + self.2.encoded_len()
            }
        }
        self.scratch.encode(&Out(src, dst, payload))
    }

    /// Decode one received datagram. `None` means the bytes were not a
    /// well-formed frame; the drop is counted in
    /// [`FrameStats::malformed_dropped`].
    pub fn decode(&mut self, datagram: &[u8]) -> Option<SockFrame> {
        match wire::from_bytes::<SockFrame>(&Bytes::copy_from_slice(datagram)) {
            Ok(f) => {
                self.stats.decoded += 1;
                Some(f)
            }
            Err(_) => {
                self.stats.malformed_dropped += 1;
                None
            }
        }
    }

    /// Codec counters so far.
    pub fn stats(&self) -> FrameStats {
        self.stats
    }

    /// The scratch pool's counters (steady-state allocation oracle of
    /// the socket send path).
    pub fn wire_stats(&self) -> ScratchStats {
        self.scratch.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sockframe_wire_contract() {
        for payload in [Bytes::new(), Bytes::from_static(b"abc"), Bytes::from(vec![7u8; 300])] {
            let f = SockFrame { src: StackId(3), dst: StackId(12), payload };
            wire::testing::assert_wire_contract(&f);
        }
    }

    #[test]
    fn codec_encode_matches_owned_frame() {
        let mut codec = FrameCodec::new();
        let payload = Bytes::from_static(b"wire frame");
        let via_codec = codec.encode(StackId(1), StackId(2), &payload);
        let owned = SockFrame { src: StackId(1), dst: StackId(2), payload }.to_bytes();
        assert_eq!(via_codec, owned);
        assert_eq!(codec.stats().encoded, 1);
    }

    #[test]
    fn codec_roundtrip_and_counters() {
        let mut codec = FrameCodec::new();
        let d = codec.encode(StackId(5), StackId(6), &Bytes::from_static(b"payload"));
        let back = codec.decode(&d).expect("well-formed frame");
        assert_eq!(back.src, StackId(5));
        assert_eq!(back.dst, StackId(6));
        assert_eq!(back.payload, Bytes::from_static(b"payload"));
        assert_eq!(codec.stats(), FrameStats { encoded: 1, decoded: 1, malformed_dropped: 0 });
    }

    #[test]
    fn bad_magic_is_a_counted_drop() {
        let mut codec = FrameCodec::new();
        let mut d = codec.encode(StackId(1), StackId(2), &Bytes::from_static(b"x")).to_vec();
        d[0] ^= 0xff; // clobber the magic
        assert!(codec.decode(&d).is_none());
        assert_eq!(codec.stats().malformed_dropped, 1);
    }

    #[test]
    fn junk_truncation_and_corruption_never_panic() {
        let mut codec = FrameCodec::new();
        let good = codec.encode(StackId(9), StackId(4), &Bytes::from(vec![0xabu8; 64]));
        // Every strict prefix must be a counted drop.
        for cut in 0..good.len() {
            assert!(codec.decode(&good[..cut]).is_none(), "{cut}-byte prefix decoded");
        }
        // Arbitrary junk: xorshift bytes of many lengths.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for len in 0..128usize {
            let junk: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    (x >> 32) as u8
                })
                .collect();
            let _ = codec.decode(&junk); // Ok or counted drop — never a panic.
        }
        // Single-byte corruptions of a valid frame: decode may succeed
        // (payload bytes) or drop, never panic.
        for i in 0..good.len() {
            let mut c = good.to_vec();
            c[i] ^= 0x80;
            let _ = codec.decode(&c);
        }
        assert!(codec.stats().malformed_dropped >= good.len() as u64);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut codec = FrameCodec::new();
        let mut d = codec.encode(StackId(1), StackId(2), &Bytes::from_static(b"p")).to_vec();
        d.push(0x00);
        assert!(codec.decode(&d).is_none(), "frame with trailing byte decoded");
    }

    #[test]
    fn scratch_reuses_buffers_in_steady_state() {
        let mut codec = FrameCodec::new();
        let payload = Bytes::from(vec![1u8; 128]);
        for _ in 0..100 {
            let d = codec.encode(StackId(0), StackId(1), &payload);
            drop(d); // consumer done — buffer reclaimable
        }
        let ws = codec.wire_stats();
        assert_eq!(ws.emitted, 100);
        assert!(ws.reclaimed >= 90, "steady-state encodes must reclaim: {ws:?}");
    }
}
