//! The [`Module`] trait and the two kinds of inter-module interaction:
//! service [`Call`]s and [`Response`]s (paper §2, Figure 2).

use crate::ids::{ModuleId, ServiceId};
use crate::stack::ModuleCtx;
use crate::wire::{Decode, Encode, WireResult};
use bytes::{Bytes, BytesMut};
use std::any::Any;

/// An operation code within a service interface.
///
/// Each service defines a small set of operations, e.g. the `abcast`
/// service defines the downward call `ABCAST` and the upward response
/// `ADELIVER`. Operation constants live next to the service definition in
/// the crate that owns the protocol.
pub type Op = u16;

/// A service call: the *local* interaction from a caller module to the
/// module currently bound to `service` in the same stack.
#[derive(Clone, Debug)]
pub struct Call {
    /// The service being called.
    pub service: ServiceId,
    /// Which operation of the service interface is invoked.
    pub op: Op,
    /// Operation payload, encoded with [`crate::wire`].
    pub data: Bytes,
    /// The module that made the call.
    pub from: ModuleId,
}

impl Call {
    /// Decode the payload as `T`.
    pub fn decode<T: Decode>(&self) -> WireResult<T> {
        T::from_bytes(&self.data)
    }
}

/// A response to a service call: an invocation flowing from the provider
/// of `service` back to the modules that require it, on the local stack.
///
/// Remote interaction (a response occurring on stack `j ≠ i`) arises when a
/// provider module on stack `j` responds there as a consequence of a call
/// made on stack `i` — e.g. `Adeliver` on every stack after one `ABcast`.
#[derive(Clone, Debug)]
pub struct Response {
    /// The service responding.
    pub service: ServiceId,
    /// Which operation of the service interface this response carries.
    pub op: Op,
    /// Response payload, encoded with [`crate::wire`].
    pub data: Bytes,
    /// The provider module that issued the response. Note that per the
    /// paper a module may respond even after it has been unbound.
    pub from: ModuleId,
}

impl Response {
    /// Decode the payload as `T`.
    pub fn decode<T: Decode>(&self) -> WireResult<T> {
        T::from_bytes(&self.data)
    }
}

/// A protocol module: one local member of a distributed protocol
/// (the paper's `P_i`).
///
/// Modules are event-driven state machines. They never block; every
/// external effect (calling another service, responding to callers,
/// setting timers, rebinding services, creating modules) goes through the
/// [`ModuleCtx`] passed to each handler. The stack dispatches exactly one
/// handler at a time (run-to-completion), so handlers may freely mutate
/// `self` without further synchronisation.
///
/// The trait requires `Any` so hosts and tests can downcast concrete
/// modules via [`crate::stack::Stack::with_module`].
pub trait Module: Any + Send {
    /// Short kind name, e.g. `"abcast.ct"`. Two modules of the same
    /// protocol (on different stacks) share a kind; the
    /// protocol-operationability checker matches modules across stacks by
    /// kind.
    fn kind(&self) -> &str;

    /// Services this module can provide (it still must be *bound* to
    /// actually receive calls).
    fn provides(&self) -> Vec<ServiceId>;

    /// Services this module requires. The stack uses this to route
    /// responses: a response on service `s` is delivered to every module
    /// requiring `s`.
    fn requires(&self) -> Vec<ServiceId>;

    /// Invoked once when the module is created and inserted in the stack.
    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        let _ = ctx;
    }

    /// A call arrived on a service this module is bound to.
    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call);

    /// A response arrived on a service this module requires.
    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response);

    /// A timer set by this module fired. `tag` is the value passed to
    /// [`ModuleCtx::set_timer`].
    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, timer: crate::ids::TimerId, tag: u64) {
        let _ = (ctx, timer, tag);
    }

    /// Invoked when the module is destroyed (e.g. by a Maestro-style
    /// whole-stack switch). Unbinding alone does *not* trigger this.
    fn on_stop(&mut self, ctx: &mut ModuleCtx<'_>) {
        let _ = ctx;
    }

    /// Health counters, if this module implements a reliable transport
    /// (retransmission + acknowledgements). The default is `None`;
    /// `rp2p`-style modules override it so hosts can aggregate transport
    /// health per stack ([`crate::stack::Stack::transport_stats`]) and
    /// per run without downcasting to concrete module types.
    fn transport_stats(&self) -> Option<TransportStats> {
        None
    }
}

/// Counters reported by reliable-transport modules (see
/// [`Module::transport_stats`]). All counters are cumulative over the
/// module's lifetime; `unacked` is the current backlog.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Data frames retransmitted after a retransmission-timer scan.
    pub retransmissions: u64,
    /// Frames dropped after exhausting the configured retransmit cap —
    /// non-zero means a peer looked permanently dead and reliability was
    /// given up for those frames.
    pub exhausted: u64,
    /// Frames currently awaiting acknowledgement across all peers.
    pub unacked: u64,
}

impl TransportStats {
    /// Fold another module's counters into this one (plain addition).
    pub fn absorb(&mut self, other: TransportStats) {
        self.retransmissions += other.retransmissions;
        self.exhausted += other.exhausted;
        self.unacked += other.unacked;
    }
}

/// A serialisable description of a module to create: the paper's `prot`
/// argument of `changeABcast(prot)` and the unit of
/// [`crate::stack::FactoryRegistry`] construction.
///
/// `kind` selects a registered factory; `params` is an opaque,
/// factory-specific configuration blob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleSpec {
    /// Factory/kind name, e.g. `"abcast.seq"`.
    pub kind: String,
    /// Factory-specific parameters (wire-encoded).
    pub params: Bytes,
}

impl ModuleSpec {
    /// Spec with no parameters.
    pub fn new(kind: impl Into<String>) -> ModuleSpec {
        ModuleSpec { kind: kind.into(), params: Bytes::new() }
    }

    /// Spec with wire-encoded parameters.
    pub fn with_params<T: Encode>(kind: impl Into<String>, params: &T) -> ModuleSpec {
        ModuleSpec { kind: kind.into(), params: params.to_bytes() }
    }

    /// Decode the parameter blob as `T`.
    pub fn params<T: Decode>(&self) -> WireResult<T> {
        T::from_bytes(&self.params)
    }
}

impl Encode for ModuleSpec {
    fn encode(&self, buf: &mut BytesMut) {
        self.kind.encode(buf);
        self.params.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.kind.encoded_len() + self.params.encoded_len()
    }
}

impl Decode for ModuleSpec {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(ModuleSpec { kind: String::decode(buf)?, params: Bytes::decode(buf)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    #[test]
    fn module_spec_roundtrip() {
        let spec = ModuleSpec::with_params("abcast.ct", &(3u32, String::from("cfg")));
        let b = wire::to_bytes(&spec);
        let back: ModuleSpec = wire::from_bytes(&b).unwrap();
        assert_eq!(back, spec);
        let (n, s): (u32, String) = back.params().unwrap();
        assert_eq!(n, 3);
        assert_eq!(s, "cfg");
    }

    #[test]
    fn module_spec_new_has_empty_params() {
        let spec = ModuleSpec::new("fd");
        assert_eq!(spec.kind, "fd");
        assert!(spec.params.is_empty());
    }

    #[test]
    fn call_and_response_decode() {
        let call = Call {
            service: ServiceId::new("q"),
            op: 1,
            data: wire::to_bytes(&42u64),
            from: ModuleId(1),
        };
        assert_eq!(call.decode::<u64>().unwrap(), 42);
        let resp = Response {
            service: ServiceId::new("q"),
            op: 2,
            data: wire::to_bytes(&(7u32, true)),
            from: ModuleId(2),
        };
        assert_eq!(resp.decode::<(u32, bool)>().unwrap(), (7, true));
    }
}
