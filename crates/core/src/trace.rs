//! Trace recording: every structurally relevant event of a run (calls,
//! responses, bindings, module lifecycle, crashes) is appended to a
//! [`TraceLog`], which the property checkers in [`crate::props`] consume.

use crate::ids::{ModuleId, ServiceId, StackId};
use crate::module::Op;
use crate::time::Time;

/// One structurally relevant event observed during a run.
///
/// Events carry the stack on which they occurred and the virtual time.
/// Payloads are intentionally *not* recorded: the generic DPU properties of
/// the paper (§3) are about the structure of interactions, not their
/// content. Protocol-specific checkers (e.g. [`crate::abcast_check`]) keep
/// their own records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A module called a service that was bound: the call was dispatched
    /// immediately.
    Call {
        /// Stack on which the call happened.
        stack: StackId,
        /// Called service.
        service: ServiceId,
        /// Operation invoked.
        op: Op,
        /// Calling module.
        from: ModuleId,
        /// Provider module the call was dispatched to.
        to: ModuleId,
    },
    /// A module called a service with no bound provider: the call was
    /// queued (it *blocks* in the paper's terminology). Violates *strong*
    /// stack-well-formedness; allowed under *weak* iff a bind eventually
    /// releases it.
    BlockedCall {
        /// Stack on which the call happened.
        stack: StackId,
        /// Called (unbound) service.
        service: ServiceId,
        /// Operation invoked.
        op: Op,
        /// Calling module.
        from: ModuleId,
    },
    /// A previously blocked call was released by a bind.
    ReleasedCall {
        /// Stack on which the call resumed.
        stack: StackId,
        /// Service that became bound.
        service: ServiceId,
        /// Operation invoked.
        op: Op,
        /// Original calling module.
        from: ModuleId,
    },
    /// A provider responded on a service.
    Response {
        /// Stack on which the response happened.
        stack: StackId,
        /// Responding service.
        service: ServiceId,
        /// Operation of the response.
        op: Op,
        /// Provider module (may already be unbound — the paper allows a
        /// module to respond after unbinding).
        from: ModuleId,
        /// Number of local modules the response was delivered to.
        fanout: usize,
    },
    /// A module was bound to a service.
    Bind {
        /// Stack on which the binding changed.
        stack: StackId,
        /// Bound service.
        service: ServiceId,
        /// Newly bound module.
        module: ModuleId,
    },
    /// A service was unbound.
    Unbind {
        /// Stack on which the binding changed.
        stack: StackId,
        /// Unbound service.
        service: ServiceId,
        /// Module that was bound before.
        module: ModuleId,
    },
    /// A module was created and inserted into a stack.
    ModuleCreated {
        /// Stack that created the module.
        stack: StackId,
        /// Fresh module id.
        module: ModuleId,
        /// Module kind (protocol identity across stacks).
        kind: String,
    },
    /// A module was destroyed and removed from a stack.
    ModuleDestroyed {
        /// Stack that destroyed the module.
        stack: StackId,
        /// Destroyed module id.
        module: ModuleId,
        /// Module kind.
        kind: String,
    },
    /// The stack crashed (injected by the host). No further events occur
    /// on a crashed stack.
    Crash {
        /// Crashed stack.
        stack: StackId,
    },
}

impl TraceEvent {
    /// The stack this event belongs to.
    pub fn stack(&self) -> StackId {
        match self {
            TraceEvent::Call { stack, .. }
            | TraceEvent::BlockedCall { stack, .. }
            | TraceEvent::ReleasedCall { stack, .. }
            | TraceEvent::Response { stack, .. }
            | TraceEvent::Bind { stack, .. }
            | TraceEvent::Unbind { stack, .. }
            | TraceEvent::ModuleCreated { stack, .. }
            | TraceEvent::ModuleDestroyed { stack, .. }
            | TraceEvent::Crash { stack } => *stack,
        }
    }
}

/// A time-stamped trace of [`TraceEvent`]s, ordered by append time.
///
/// One log typically aggregates the events of *all* stacks of a run (the
/// simulator interleaves them deterministically), which is what the remote
/// property — protocol-operationability — needs.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: Vec<(Time, TraceEvent)>,
    enabled: bool,
}

impl TraceLog {
    /// A log that records events.
    pub fn new() -> TraceLog {
        TraceLog { events: Vec::new(), enabled: true }
    }

    /// A log that drops events (zero-overhead for benchmarks).
    pub fn disabled() -> TraceLog {
        TraceLog { events: Vec::new(), enabled: false }
    }

    /// Whether this log keeps events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event at time `t`.
    pub fn push(&mut self, t: Time, ev: TraceEvent) {
        if self.enabled {
            self.events.push((t, ev));
        }
    }

    /// All recorded events in append order.
    pub fn events(&self) -> &[(Time, TraceEvent)] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Structural bytes held by the event vector (capacity × entry
    /// size; event-internal strings are not walked). Feeds the hosts'
    /// memory audit — tracing is usually the dominant per-stack cost
    /// when enabled, which is why capacity runs disable it.
    pub fn mem_bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<(Time, TraceEvent)>()
    }

    /// Append all events of `other` (e.g. to merge per-stack logs). The
    /// result is re-sorted by time, preserving append order for equal
    /// times.
    pub fn merge(&mut self, other: &TraceLog) {
        self.events.extend_from_slice(&other.events);
        self.events.sort_by_key(|(t, _)| *t);
    }

    /// FNV-1a over the debug rendering of every `(time, event)` pair —
    /// the construction every equivalence suite pins runs with
    /// (`tests/host_equivalence.rs` golden fingerprint,
    /// `crates/sim/tests/{sched,par}_equiv.rs`). Stable across
    /// platforms: no pointers and no nondeterministically ordered maps
    /// feed the rendering.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for (t, e) in &self.events {
            for b in format!("{}|{:?}\n", t.as_nanos(), e).bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    /// Iterate over events of a single stack.
    pub fn for_stack(&self, stack: StackId) -> impl Iterator<Item = &(Time, TraceEvent)> {
        self.events.iter().filter(move |(_, e)| e.stack() == stack)
    }

    /// The set of stacks that crashed in this trace.
    pub fn crashed_stacks(&self) -> std::collections::BTreeSet<StackId> {
        self.events
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::Crash { stack } => Some(*stack),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(stack: u32, svc: &str, m: u64) -> TraceEvent {
        TraceEvent::Bind {
            stack: StackId(stack),
            service: ServiceId::new(svc),
            module: ModuleId(m),
        }
    }

    #[test]
    fn push_and_query() {
        let mut log = TraceLog::new();
        log.push(Time(1), bind(0, "p", 1));
        log.push(Time(2), bind(1, "p", 2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.for_stack(StackId(0)).count(), 1);
        assert_eq!(log.for_stack(StackId(1)).count(), 1);
        assert_eq!(log.for_stack(StackId(2)).count(), 0);
    }

    #[test]
    fn disabled_log_drops_events() {
        let mut log = TraceLog::disabled();
        log.push(Time(1), bind(0, "p", 1));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn merge_sorts_by_time() {
        let mut a = TraceLog::new();
        a.push(Time(5), bind(0, "p", 1));
        let mut b = TraceLog::new();
        b.push(Time(2), bind(1, "p", 2));
        a.merge(&b);
        assert_eq!(a.events()[0].0, Time(2));
        assert_eq!(a.events()[1].0, Time(5));
    }

    #[test]
    fn crashed_stacks_collects_crashes() {
        let mut log = TraceLog::new();
        log.push(Time(1), TraceEvent::Crash { stack: StackId(2) });
        log.push(Time(2), TraceEvent::Crash { stack: StackId(4) });
        let crashed = log.crashed_stacks();
        assert!(crashed.contains(&StackId(2)));
        assert!(crashed.contains(&StackId(4)));
        assert_eq!(crashed.len(), 2);
    }

    #[test]
    fn event_stack_accessor_covers_all_variants() {
        let s = StackId(3);
        let svc = ServiceId::new("p");
        let evs = vec![
            TraceEvent::Call {
                stack: s,
                service: svc.clone(),
                op: 0,
                from: ModuleId(1),
                to: ModuleId(2),
            },
            TraceEvent::BlockedCall { stack: s, service: svc.clone(), op: 0, from: ModuleId(1) },
            TraceEvent::ReleasedCall { stack: s, service: svc.clone(), op: 0, from: ModuleId(1) },
            TraceEvent::Response {
                stack: s,
                service: svc.clone(),
                op: 0,
                from: ModuleId(1),
                fanout: 2,
            },
            TraceEvent::Bind { stack: s, service: svc.clone(), module: ModuleId(1) },
            TraceEvent::Unbind { stack: s, service: svc.clone(), module: ModuleId(1) },
            TraceEvent::ModuleCreated { stack: s, module: ModuleId(1), kind: "k".into() },
            TraceEvent::ModuleDestroyed { stack: s, module: ModuleId(1), kind: "k".into() },
            TraceEvent::Crash { stack: s },
        ];
        for e in evs {
            assert_eq!(e.stack(), s);
        }
    }
}
