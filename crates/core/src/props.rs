//! Mechanical checkers for the paper's generic DPU correctness properties
//! (§3): *stack-well-formedness* (local) and *protocol-operationability*
//! (remote), each at a strong and a weak level.
//!
//! The checkers are post-hoc: they consume a merged [`TraceLog`] of a
//! finished run. "Eventually" is interpreted as "by the end of the trace",
//! which is the standard finite-trace reading used when testing liveness
//! properties: a run must be long enough (quiescent at the end) for the
//! weak properties to be meaningful.

use crate::ids::{ModuleId, ServiceId, StackId};
use crate::time::Time;
use crate::trace::{TraceEvent, TraceLog};
use std::collections::{BTreeMap, BTreeSet};

/// Result of assessing a two-level (strong/weak) property on a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assessment {
    /// The strong level holds.
    pub strong: bool,
    /// The weak level holds (implied by `strong`).
    pub weak: bool,
    /// Human-readable descriptions of each weak-level violation.
    pub violations: Vec<String>,
}

impl Assessment {
    fn strong() -> Assessment {
        Assessment { strong: true, weak: true, violations: Vec::new() }
    }
}

/// Check **stack-well-formedness** (paper §3) on every stack in the trace.
///
/// * **Strong**: whenever a module calls a service, the service is bound —
///   i.e. the trace contains no [`TraceEvent::BlockedCall`].
/// * **Weak**: every blocked call is eventually released by a bind
///   ([`TraceEvent::ReleasedCall`]) before the end of the trace. Calls
///   blocked on a stack that subsequently crashes are excused: the
///   property quantifies over non-crashed stacks.
pub fn check_stack_well_formedness(log: &TraceLog) -> Assessment {
    let mut assessment = Assessment::strong();
    // Outstanding blocked calls per (stack, service): count.
    let mut outstanding: BTreeMap<(StackId, ServiceId), u64> = BTreeMap::new();
    let mut crashed: BTreeSet<StackId> = BTreeSet::new();
    for (t, ev) in log.events() {
        match ev {
            TraceEvent::BlockedCall { stack, service, op, from } => {
                assessment.strong = false;
                if assessment.violations.is_empty() {
                    // Remember the first blocking point for diagnostics if
                    // it never resolves; refined below.
                }
                let _ = (t, op, from);
                *outstanding.entry((*stack, service.clone())).or_insert(0) += 1;
            }
            TraceEvent::ReleasedCall { stack, service, .. } => {
                if let Some(n) = outstanding.get_mut(&(*stack, service.clone())) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        outstanding.remove(&(*stack, service.clone()));
                    }
                }
            }
            TraceEvent::Crash { stack } => {
                crashed.insert(*stack);
            }
            _ => {}
        }
    }
    for ((stack, service), n) in outstanding {
        if n > 0 && !crashed.contains(&stack) {
            assessment.weak = false;
            assessment.violations.push(format!(
                "{n} call(s) on {stack} to service {service} blocked forever (never rebound)"
            ));
        }
    }
    assessment
}

/// Lifetime interval of a module instance: `[created, destroyed)`, with
/// `destroyed = None` meaning it lived to the end of the trace.
#[derive(Clone, Debug)]
struct Lifetime {
    created: Time,
    destroyed: Option<Time>,
}

impl Lifetime {
    fn alive_at(&self, t: Time) -> bool {
        self.created <= t && self.destroyed.is_none_or(|d| t < d)
    }
    fn alive_at_or_after(&self, t: Time) -> bool {
        self.destroyed.is_none_or(|d| t < d)
    }
}

/// Check **protocol-operationability** (paper §3) for the protocol whose
/// modules have kind `kind`, over the stack set `stacks`.
///
/// * **Strong**: whenever a module of `kind` is *bound* in some stack `i`,
///   all non-crashed stacks `j ∈ stacks` contain a live module of `kind`
///   at that moment.
/// * **Weak**: …all non-crashed stacks eventually (at or after the bind
///   time, by the end of the trace) contain a module of `kind`.
///
/// "Non-crashed" is judged at the end of the trace, matching the paper's
/// asynchronous-model reading where a stack that crashes is permanently
/// excused.
pub fn check_protocol_operationability(
    log: &TraceLog,
    kind: &str,
    stacks: &[StackId],
) -> Assessment {
    let mut assessment = Assessment::strong();
    let crashed = log.crashed_stacks();

    // Reconstruct module lifetimes and kinds.
    let mut kind_of: BTreeMap<(StackId, ModuleId), String> = BTreeMap::new();
    let mut lifetimes: BTreeMap<StackId, Vec<Lifetime>> = BTreeMap::new();
    let mut open: BTreeMap<(StackId, ModuleId), usize> = BTreeMap::new();
    for (t, ev) in log.events() {
        match ev {
            TraceEvent::ModuleCreated { stack, module, kind: k } => {
                kind_of.insert((*stack, *module), k.clone());
                if k == kind {
                    let v = lifetimes.entry(*stack).or_default();
                    open.insert((*stack, *module), v.len());
                    v.push(Lifetime { created: *t, destroyed: None });
                }
            }
            TraceEvent::ModuleDestroyed { stack, module, kind: k } if k == kind => {
                if let Some(idx) = open.remove(&(*stack, *module)) {
                    if let Some(v) = lifetimes.get_mut(stack) {
                        v[idx].destroyed = Some(*t);
                    }
                }
            }
            _ => {}
        }
    }

    // For every bind of a module of `kind`, check all other stacks.
    for (t, ev) in log.events() {
        let TraceEvent::Bind { stack: binder, module, .. } = ev else { continue };
        if kind_of.get(&(*binder, *module)).map(String::as_str) != Some(kind) {
            continue;
        }
        for j in stacks {
            if *j == *binder || crashed.contains(j) {
                continue;
            }
            let lt = lifetimes.get(j).map(Vec::as_slice).unwrap_or(&[]);
            let now_alive = lt.iter().any(|l| l.alive_at(*t));
            let eventually_alive = lt.iter().any(|l| l.alive_at_or_after(*t));
            if !now_alive {
                assessment.strong = false;
            }
            if !eventually_alive {
                assessment.weak = false;
                assessment.violations.push(format!(
                    "module of kind {kind:?} bound on {binder} at {t} but {j} never \
                     contains one at or after that time"
                ));
            }
        }
    }
    assessment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServiceId;

    fn svc(s: &str) -> ServiceId {
        ServiceId::new(s)
    }

    #[test]
    fn empty_trace_is_strongly_well_formed() {
        let log = TraceLog::new();
        let a = check_stack_well_formedness(&log);
        assert!(a.strong && a.weak);
    }

    #[test]
    fn blocked_then_released_is_weak_not_strong() {
        let mut log = TraceLog::new();
        log.push(
            Time(1),
            TraceEvent::BlockedCall {
                stack: StackId(0),
                service: svc("p"),
                op: 1,
                from: ModuleId(1),
            },
        );
        log.push(
            Time(2),
            TraceEvent::ReleasedCall {
                stack: StackId(0),
                service: svc("p"),
                op: 1,
                from: ModuleId(1),
            },
        );
        let a = check_stack_well_formedness(&log);
        assert!(!a.strong);
        assert!(a.weak);
        assert!(a.violations.is_empty());
    }

    #[test]
    fn blocked_forever_violates_weak() {
        let mut log = TraceLog::new();
        log.push(
            Time(1),
            TraceEvent::BlockedCall {
                stack: StackId(0),
                service: svc("p"),
                op: 1,
                from: ModuleId(1),
            },
        );
        let a = check_stack_well_formedness(&log);
        assert!(!a.strong);
        assert!(!a.weak);
        assert_eq!(a.violations.len(), 1);
    }

    #[test]
    fn blocked_on_crashed_stack_is_excused() {
        let mut log = TraceLog::new();
        log.push(
            Time(1),
            TraceEvent::BlockedCall {
                stack: StackId(0),
                service: svc("p"),
                op: 1,
                from: ModuleId(1),
            },
        );
        log.push(Time(2), TraceEvent::Crash { stack: StackId(0) });
        let a = check_stack_well_formedness(&log);
        assert!(!a.strong);
        assert!(a.weak, "crashed stacks are excused from weak well-formedness");
    }

    #[test]
    fn multiple_blocked_partial_release_detected() {
        let mut log = TraceLog::new();
        for _ in 0..3 {
            log.push(
                Time(1),
                TraceEvent::BlockedCall {
                    stack: StackId(0),
                    service: svc("p"),
                    op: 1,
                    from: ModuleId(1),
                },
            );
        }
        for _ in 0..2 {
            log.push(
                Time(2),
                TraceEvent::ReleasedCall {
                    stack: StackId(0),
                    service: svc("p"),
                    op: 1,
                    from: ModuleId(1),
                },
            );
        }
        let a = check_stack_well_formedness(&log);
        assert!(!a.weak);
        assert!(a.violations[0].contains("1 call(s)"));
    }

    fn created(t: u64, stack: u32, m: u64, kind: &str) -> (Time, TraceEvent) {
        (
            Time(t),
            TraceEvent::ModuleCreated {
                stack: StackId(stack),
                module: ModuleId(m),
                kind: kind.into(),
            },
        )
    }

    fn bound(t: u64, stack: u32, m: u64) -> (Time, TraceEvent) {
        (
            Time(t),
            TraceEvent::Bind { stack: StackId(stack), service: svc("p"), module: ModuleId(m) },
        )
    }

    fn push_all(log: &mut TraceLog, evs: Vec<(Time, TraceEvent)>) {
        for (t, e) in evs {
            log.push(t, e);
        }
    }

    #[test]
    fn operationability_strong_when_all_stacks_have_module_at_bind() {
        let mut log = TraceLog::new();
        push_all(&mut log, vec![created(0, 0, 1, "P"), created(0, 1, 1, "P"), bound(5, 0, 1)]);
        let a = check_protocol_operationability(&log, "P", &[StackId(0), StackId(1)]);
        assert!(a.strong && a.weak);
    }

    #[test]
    fn operationability_weak_when_module_created_later() {
        let mut log = TraceLog::new();
        push_all(&mut log, vec![created(0, 0, 1, "P"), bound(5, 0, 1), created(9, 1, 1, "P")]);
        let a = check_protocol_operationability(&log, "P", &[StackId(0), StackId(1)]);
        assert!(!a.strong);
        assert!(a.weak);
    }

    #[test]
    fn operationability_violated_when_stack_never_gets_module() {
        let mut log = TraceLog::new();
        push_all(&mut log, vec![created(0, 0, 1, "P"), bound(5, 0, 1)]);
        let a = check_protocol_operationability(&log, "P", &[StackId(0), StackId(1)]);
        assert!(!a.weak);
        assert_eq!(a.violations.len(), 1);
    }

    #[test]
    fn operationability_excuses_crashed_stacks() {
        let mut log = TraceLog::new();
        push_all(&mut log, vec![created(0, 0, 1, "P"), bound(5, 0, 1)]);
        log.push(Time(6), TraceEvent::Crash { stack: StackId(1) });
        let a = check_protocol_operationability(&log, "P", &[StackId(0), StackId(1)]);
        assert!(a.weak);
    }

    #[test]
    fn operationability_destroyed_before_bind_counts_as_missing() {
        let mut log = TraceLog::new();
        push_all(&mut log, vec![created(0, 0, 1, "P"), created(0, 1, 1, "P")]);
        log.push(
            Time(2),
            TraceEvent::ModuleDestroyed {
                stack: StackId(1),
                module: ModuleId(1),
                kind: "P".into(),
            },
        );
        push_all(&mut log, vec![bound(5, 0, 1)]);
        let a = check_protocol_operationability(&log, "P", &[StackId(0), StackId(1)]);
        assert!(!a.strong);
        assert!(!a.weak);
    }

    #[test]
    fn operationability_ignores_binds_of_other_kinds() {
        let mut log = TraceLog::new();
        push_all(&mut log, vec![created(0, 0, 1, "Q"), bound(5, 0, 1)]);
        let a = check_protocol_operationability(&log, "P", &[StackId(0), StackId(1)]);
        assert!(a.strong && a.weak);
    }
}
