//! Trace checker for the four atomic broadcast properties (paper §5.1,
//! after Hadzilacos & Toueg):
//!
//! * **Validity** — if a correct process ABcasts `m`, it eventually
//!   Adelivers `m`;
//! * **Uniform agreement** — if a process Adelivers `m`, all correct
//!   processes eventually Adeliver `m`;
//! * **Uniform integrity** — every process Adelivers `m` at most once, and
//!   only if `m` was previously ABcast;
//! * **Uniform total order** — if some process Adelivers `m` before `m'`,
//!   every process Adelivers `m'` only after it has Adelivered `m`.
//!
//! The paper's §5.2.2 proves these are preserved *across* the replacement
//! algorithm; the integration tests use this checker to verify exactly
//! that, including runs with crashes, message loss, and mid-stream
//! protocol switches.

use crate::ids::StackId;
use crate::time::Time;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Global identity of an application message: `(origin stack, sequence
/// number at the origin)`.
pub type MsgId = (StackId, u64);

/// A violation of one of the atomic broadcast properties.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbcastViolation {
    /// A correct sender never delivered its own message.
    Validity {
        /// The undelivered message.
        msg: MsgId,
    },
    /// Some process delivered `msg` but a correct process did not.
    Agreement {
        /// The message in question.
        msg: MsgId,
        /// A stack that delivered it.
        delivered_by: StackId,
        /// A correct stack that missed it.
        missing_on: StackId,
    },
    /// A message was delivered more than once by one stack.
    DuplicateDelivery {
        /// The duplicated message.
        msg: MsgId,
        /// The offending stack.
        stack: StackId,
        /// How many times it was delivered there.
        times: usize,
    },
    /// A message was delivered without ever being broadcast.
    SpuriousDelivery {
        /// The unknown message.
        msg: MsgId,
        /// The offending stack.
        stack: StackId,
    },
    /// Two stacks delivered a pair of messages in opposite orders.
    TotalOrder {
        /// First message of the inverted pair.
        a: MsgId,
        /// Second message of the inverted pair.
        b: MsgId,
        /// Stack that delivered `a` before `b`.
        stack_ab: StackId,
        /// Stack that delivered `b` before `a`.
        stack_ba: StackId,
    },
}

impl fmt::Display for AbcastViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbcastViolation::Validity { msg } => {
                write!(f, "validity: correct sender never adelivered its own {msg:?}")
            }
            AbcastViolation::Agreement { msg, delivered_by, missing_on } => write!(
                f,
                "uniform agreement: {msg:?} adelivered by {delivered_by} but not by correct {missing_on}"
            ),
            AbcastViolation::DuplicateDelivery { msg, stack, times } => {
                write!(f, "uniform integrity: {msg:?} adelivered {times} times on {stack}")
            }
            AbcastViolation::SpuriousDelivery { msg, stack } => {
                write!(f, "uniform integrity: {msg:?} adelivered on {stack} but never abcast")
            }
            AbcastViolation::TotalOrder { a, b, stack_ab, stack_ba } => write!(
                f,
                "uniform total order: {stack_ab} adelivered {a:?} before {b:?}, {stack_ba} the opposite"
            ),
        }
    }
}

/// Accumulates broadcast/delivery records from a run and checks the four
/// atomic broadcast properties at the end.
#[derive(Clone, Debug, Default)]
pub struct AbcastChecker {
    broadcasts: BTreeMap<MsgId, (StackId, Time)>,
    /// Per stack, messages in delivery order.
    deliveries: BTreeMap<StackId, Vec<(MsgId, Time)>>,
    crashed: BTreeSet<StackId>,
    stacks: BTreeSet<StackId>,
}

impl AbcastChecker {
    /// A checker over the given stack set.
    pub fn new(stacks: impl IntoIterator<Item = StackId>) -> AbcastChecker {
        AbcastChecker { stacks: stacks.into_iter().collect(), ..Default::default() }
    }

    /// Record that `sender` ABcast `msg` at time `t`.
    pub fn record_broadcast(&mut self, msg: MsgId, sender: StackId, t: Time) {
        self.broadcasts.entry(msg).or_insert((sender, t));
    }

    /// Record that `stack` Adelivered `msg` at time `t`. Order of calls
    /// per stack defines that stack's delivery order.
    pub fn record_delivery(&mut self, msg: MsgId, stack: StackId, t: Time) {
        self.deliveries.entry(stack).or_default().push((msg, t));
    }

    /// Record that `stack` crashed (it becomes exempt from the liveness
    /// obligations).
    pub fn record_crash(&mut self, stack: StackId) {
        self.crashed.insert(stack);
    }

    /// Stacks considered correct: configured and never crashed.
    pub fn correct_stacks(&self) -> Vec<StackId> {
        self.stacks.iter().copied().filter(|s| !self.crashed.contains(s)).collect()
    }

    /// Number of broadcasts recorded.
    pub fn broadcast_count(&self) -> usize {
        self.broadcasts.len()
    }

    /// Number of deliveries recorded on `stack`.
    pub fn delivery_count(&self, stack: StackId) -> usize {
        self.deliveries.get(&stack).map_or(0, Vec::len)
    }

    /// Check all four properties; returns every violation found.
    pub fn check(&self) -> Vec<AbcastViolation> {
        let mut violations = Vec::new();
        let correct = self.correct_stacks();
        let empty: Vec<(MsgId, Time)> = Vec::new();

        // Uniform integrity: at most once, and only if broadcast.
        for (&stack, delivs) in &self.deliveries {
            let mut counts: BTreeMap<MsgId, usize> = BTreeMap::new();
            for (msg, _) in delivs {
                *counts.entry(*msg).or_insert(0) += 1;
            }
            for (msg, times) in counts {
                if times > 1 {
                    violations.push(AbcastViolation::DuplicateDelivery { msg, stack, times });
                }
                if !self.broadcasts.contains_key(&msg) {
                    violations.push(AbcastViolation::SpuriousDelivery { msg, stack });
                }
            }
        }

        // Validity: a correct sender delivers its own message.
        for (msg, (sender, _)) in &self.broadcasts {
            if self.crashed.contains(sender) || !self.stacks.contains(sender) {
                continue;
            }
            let delivered =
                self.deliveries.get(sender).is_some_and(|d| d.iter().any(|(m, _)| m == msg));
            if !delivered {
                violations.push(AbcastViolation::Validity { msg: *msg });
            }
        }

        // Uniform agreement: any delivery anywhere ⇒ all correct deliver.
        let mut delivered_anywhere: BTreeMap<MsgId, StackId> = BTreeMap::new();
        for (&stack, delivs) in &self.deliveries {
            for (msg, _) in delivs {
                delivered_anywhere.entry(*msg).or_insert(stack);
            }
        }
        for (msg, by) in &delivered_anywhere {
            for j in &correct {
                let has = self.deliveries.get(j).is_some_and(|d| d.iter().any(|(m, _)| m == msg));
                if !has {
                    violations.push(AbcastViolation::Agreement {
                        msg: *msg,
                        delivered_by: *by,
                        missing_on: *j,
                    });
                }
            }
        }

        // Uniform total order: pairwise relative order of commonly
        // delivered messages must agree across all stacks (crashed ones
        // included — the property is uniform).
        let stacks_with_delivs: Vec<StackId> = self.deliveries.keys().copied().collect();
        for (idx, &si) in stacks_with_delivs.iter().enumerate() {
            let di = self.deliveries.get(&si).unwrap_or(&empty);
            let pos_i: BTreeMap<MsgId, usize> =
                di.iter().enumerate().map(|(k, (m, _))| (*m, k)).collect();
            for &sj in &stacks_with_delivs[idx + 1..] {
                let dj = self.deliveries.get(&sj).unwrap_or(&empty);
                // Walk sj's order restricted to common messages and check
                // it is increasing in si's positions.
                let mut prev: Option<(MsgId, usize)> = None;
                for (m, _) in dj {
                    let Some(&p) = pos_i.get(m) else { continue };
                    if let Some((pm, pp)) = prev {
                        if p < pp {
                            violations.push(AbcastViolation::TotalOrder {
                                a: *m,
                                b: pm,
                                stack_ab: si,
                                stack_ba: sj,
                            });
                        }
                    }
                    prev = Some((*m, p));
                }
            }
        }

        violations
    }

    /// Convenience: panic with a readable report if any property is
    /// violated. For use in tests.
    pub fn assert_ok(&self) {
        let v = self.check();
        assert!(
            v.is_empty(),
            "atomic broadcast properties violated:\n{}",
            v.iter().map(|x| format!("  - {x}")).collect::<Vec<_>>().join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> StackId {
        StackId(n)
    }

    fn msg(origin: u32, seq: u64) -> MsgId {
        (sid(origin), seq)
    }

    fn checker(n: u32) -> AbcastChecker {
        AbcastChecker::new((0..n).map(StackId))
    }

    #[test]
    fn clean_run_passes() {
        let mut c = checker(3);
        for s in 0..3u32 {
            c.record_broadcast(msg(s, 0), sid(s), Time(s as u64));
        }
        // All stacks deliver all messages in the same global order.
        for stack in 0..3u32 {
            for s in 0..3u32 {
                c.record_delivery(msg(s, 0), sid(stack), Time(10 + u64::from(s)));
            }
        }
        assert!(c.check().is_empty());
        c.assert_ok();
    }

    #[test]
    fn validity_violation_detected() {
        let mut c = checker(2);
        c.record_broadcast(msg(0, 0), sid(0), Time(0));
        // Only stack 1 delivers; correct sender 0 never does.
        c.record_delivery(msg(0, 0), sid(1), Time(5));
        let v = c.check();
        assert!(v.iter().any(|x| matches!(x, AbcastViolation::Validity { .. })));
    }

    #[test]
    fn crashed_sender_exempt_from_validity() {
        let mut c = checker(2);
        c.record_broadcast(msg(0, 0), sid(0), Time(0));
        c.record_crash(sid(0));
        c.record_delivery(msg(0, 0), sid(1), Time(5));
        let v = c.check();
        assert!(!v.iter().any(|x| matches!(x, AbcastViolation::Validity { .. })));
    }

    #[test]
    fn agreement_violation_detected_even_from_crashed_deliverer() {
        let mut c = checker(3);
        c.record_broadcast(msg(0, 0), sid(0), Time(0));
        // Stack 2 delivers then crashes; correct stacks 0 and 1 never do.
        c.record_delivery(msg(0, 0), sid(2), Time(3));
        c.record_crash(sid(2));
        let v = c.check();
        let agreement: Vec<_> =
            v.iter().filter(|x| matches!(x, AbcastViolation::Agreement { .. })).collect();
        assert_eq!(agreement.len(), 2, "both correct stacks are missing the message");
    }

    #[test]
    fn duplicate_delivery_detected() {
        let mut c = checker(1);
        c.record_broadcast(msg(0, 0), sid(0), Time(0));
        c.record_delivery(msg(0, 0), sid(0), Time(1));
        c.record_delivery(msg(0, 0), sid(0), Time(2));
        let v = c.check();
        assert!(v.iter().any(|x| matches!(x, AbcastViolation::DuplicateDelivery { times: 2, .. })));
    }

    #[test]
    fn spurious_delivery_detected() {
        let mut c = checker(1);
        c.record_delivery(msg(0, 9), sid(0), Time(1));
        let v = c.check();
        assert!(v.iter().any(|x| matches!(x, AbcastViolation::SpuriousDelivery { .. })));
        // Spurious also implies agreement bookkeeping, but integrity is
        // the essential flag here.
    }

    #[test]
    fn total_order_violation_detected() {
        let mut c = checker(2);
        c.record_broadcast(msg(0, 0), sid(0), Time(0));
        c.record_broadcast(msg(1, 0), sid(1), Time(0));
        c.record_delivery(msg(0, 0), sid(0), Time(1));
        c.record_delivery(msg(1, 0), sid(0), Time(2));
        c.record_delivery(msg(1, 0), sid(1), Time(1));
        c.record_delivery(msg(0, 0), sid(1), Time(2));
        let v = c.check();
        assert!(v.iter().any(|x| matches!(x, AbcastViolation::TotalOrder { .. })));
    }

    #[test]
    fn total_order_allows_gaps_in_crashed_stack() {
        // A stack that delivered only a prefix (then crashed) must not
        // trigger a total order violation.
        let mut c = checker(2);
        c.record_broadcast(msg(0, 0), sid(0), Time(0));
        c.record_broadcast(msg(0, 1), sid(0), Time(0));
        c.record_delivery(msg(0, 0), sid(0), Time(1));
        c.record_delivery(msg(0, 1), sid(0), Time(2));
        c.record_delivery(msg(0, 0), sid(1), Time(1));
        c.record_crash(sid(1));
        let v = c.check();
        assert!(!v.iter().any(|x| matches!(x, AbcastViolation::TotalOrder { .. })));
        // Agreement is also satisfied: stack 1 crashed.
        assert!(!v.iter().any(|x| matches!(x, AbcastViolation::Agreement { .. })));
    }

    #[test]
    fn violation_display_is_readable() {
        let v = AbcastViolation::Validity { msg: msg(0, 1) };
        assert!(format!("{v}").contains("validity"));
        let v = AbcastViolation::TotalOrder {
            a: msg(0, 1),
            b: msg(1, 1),
            stack_ab: sid(0),
            stack_ba: sid(1),
        };
        assert!(format!("{v}").contains("total order"));
    }

    #[test]
    #[should_panic(expected = "atomic broadcast properties violated")]
    fn assert_ok_panics_on_violation() {
        let mut c = checker(1);
        c.record_delivery(msg(0, 9), sid(0), Time(1));
        c.assert_ok();
    }
}
