//! # dpu-core — the DPU composition model
//!
//! This crate implements the composition model of *"Structural and
//! Algorithmic Issues of Dynamic Protocol Update"* (Rütti, Wojciechowski,
//! Schiper; IPDPS 2006), §2:
//!
//! * a **service** is the specification of a distributed protocol,
//!   identified by a [`ServiceId`];
//! * a **protocol** is implemented by a set of identical **modules**
//!   ([`Module`]) located on different machines;
//! * the set of modules on one machine is a **protocol stack** ([`Stack`]);
//! * a module may be dynamically **bound** to a service it provides and
//!   later **unbound**; at most one module per stack is bound to a service
//!   at a time;
//! * a **service call** executes the bound module; if no module is bound
//!   the call **blocks** until one is (weak stack-well-formedness);
//! * a **response** to a call is an invocation flowing back from the
//!   provider to the modules that require the service, on the local or on
//!   remote stacks.
//!
//! On top of the model, the crate provides:
//!
//! * the host boundary: [`HostAction`]s through which a stack talks to
//!   the outside world (network sends, timers), and the unified host API
//!   ([`host`]) whose [`StackDriver`] encapsulates the canonical drive
//!   loop so the same stack runs unchanged under the deterministic
//!   simulator (`dpu-sim`) and the sharded live runtime (`dpu-runtime`);
//! * a binary wire codec ([`wire`]) used by all protocol messages;
//! * trace recording ([`trace`]) and mechanical checkers for the paper's
//!   generic DPU correctness properties ([`props`]) — strong/weak
//!   *stack-well-formedness* and strong/weak *protocol-operationability* —
//!   plus the four atomic broadcast properties ([`abcast_check`]);
//! * a workload/measurement probe module ([`probe`]).
//!
//! The *replacement module* itself (the paper's §4–§5 contribution) lives in
//! the `dpu-repl` crate; everything it needs — interception, rebinding,
//! recursive module creation ([`Stack::install`]) — is provided here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abcast_check;
pub mod host;
pub mod ids;
pub mod module;
pub mod probe;
pub mod props;
pub mod stack;
pub mod time;
pub mod trace;
pub mod vecmap;
pub mod wire;

pub use dpu_telemetry as telemetry;
pub use dpu_telemetry::{StackTelemetry, TelemetryConfig};
pub use host::{ActionSink, HostEvent, StackDriver, Wakeup};
pub use ids::{ModuleId, ServiceId, StackId, TimerId};
pub use module::{Call, Module, ModuleSpec, Op, Response, TransportStats};
pub use stack::{FactoryRegistry, HostAction, ModuleCtx, Stack, StackConfig};
pub use time::{Dur, Time};
pub use trace::{TraceEvent, TraceLog};

/// Well-known service names used across the workspace.
pub mod svc {
    /// The raw network service provided by the host environment (the
    /// paper's "Net" at the bottom of Figure 1/4). Calls on it become
    /// [`crate::HostAction::NetSend`]; packet arrivals come back as
    /// responses on it.
    pub const NET: &str = "net";

    /// Naming convention for the indirection interface introduced by a
    /// replacement module: callers of service `p` are rewired to `r-p`
    /// (paper, Figure 3).
    pub fn replaced(service: &str) -> String {
        format!("r-{service}")
    }
}

#[cfg(test)]
mod svc_tests {
    use super::svc;

    #[test]
    fn replaced_prefixes_r_dash() {
        assert_eq!(svc::replaced("abcast"), "r-abcast");
        assert_eq!(svc::replaced("net"), "r-net");
    }
}
