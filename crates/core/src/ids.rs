//! Identifiers for stacks, modules, services and timers.

use std::fmt;
use std::sync::Arc;

/// Identifies one protocol stack, i.e. one machine/process in the system
/// (the paper's "stack i").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StackId(pub u32);

impl StackId {
    /// The index as `usize`, for indexing per-stack vectors.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stack{}", self.0)
    }
}

impl fmt::Display for StackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stack{}", self.0)
    }
}

/// Identifies one module instance within a stack. Fresh ids are allocated
/// by the stack each time a module is created; ids are never reused, so a
/// dangling `ModuleId` (e.g. of a destroyed module) is detectable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub u64);

impl fmt::Debug for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifies a timer set by a module via
/// [`ModuleCtx::set_timer`](crate::stack::ModuleCtx::set_timer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer{}", self.0)
    }
}

/// The name of a service — the *specification* of a distributed protocol
/// (the paper's lower-case `p`, `q`, `r`).
///
/// Cheap to clone (reference-counted string). Two `ServiceId`s compare
/// equal iff their names are equal, regardless of how they were created.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(Arc<str>);

impl ServiceId {
    /// Create a service id from a name.
    ///
    /// Names are interned in a process-wide pool: every `ServiceId` for
    /// the same name shares one `Arc<str>` allocation. Without this,
    /// each stack's module slots retain their own copies of "net",
    /// "abcast", "r-abcast", … — a hundred-odd bytes per stack that a
    /// million-stack simulation cannot afford. The pool grows with the
    /// number of *distinct* service names in the process (a handful),
    /// never with stack count or message volume.
    pub fn new(name: impl AsRef<str>) -> ServiceId {
        use std::collections::BTreeMap;
        use std::sync::{Mutex, OnceLock};
        static POOL: OnceLock<Mutex<BTreeMap<Arc<str>, ()>>> = OnceLock::new();
        let name = name.as_ref();
        let mut pool = POOL.get_or_init(Default::default).lock().unwrap();
        if let Some((arc, ())) = pool.get_key_value(name) {
            return ServiceId(arc.clone());
        }
        let arc: Arc<str> = Arc::from(name);
        pool.insert(arc.clone(), ());
        ServiceId(arc)
    }

    /// The service name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.0
    }

    /// The indirection interface `r-<name>` for this service
    /// (paper, Figure 3): callers of the updateable service are rewired to
    /// this id, which the replacement module provides.
    pub fn replaced(&self) -> ServiceId {
        ServiceId::new(crate::svc::replaced(self.name()))
    }
}

impl From<&str> for ServiceId {
    fn from(s: &str) -> ServiceId {
        ServiceId::new(s)
    }
}

impl From<String> for ServiceId {
    fn from(s: String) -> ServiceId {
        ServiceId::new(s)
    }
}

impl fmt::Debug for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc:{}", self.0)
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn service_ids_compare_by_name() {
        let a = ServiceId::new("abcast");
        let b: ServiceId = "abcast".into();
        let c: ServiceId = String::from("consensus").into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn replaced_service_name() {
        let p = ServiceId::new("abcast");
        assert_eq!(p.replaced().name(), "r-abcast");
        // The indirection of an indirection is distinct again.
        assert_eq!(p.replaced().replaced().name(), "r-r-abcast");
    }

    #[test]
    fn stack_id_indexing_and_display() {
        let s = StackId(3);
        assert_eq!(s.idx(), 3);
        assert_eq!(format!("{s}"), "stack3");
        assert_eq!(format!("{:?}", ModuleId(9)), "m9");
    }
}
