//! A sorted-vector map: the capacity-path replacement for `BTreeMap`
//! in per-stack state.
//!
//! A `BTreeMap` allocates 11-entry leaf nodes, so a stack holding a
//! handful of modules/bindings/timers pays for dozens of slots it never
//! uses — at 10^6 stacks that overhead (~1.5–2 KB/stack across the six
//! maps in [`crate::Stack`]) dominates the residual memory budget. A
//! sorted `Vec<(K, V)>` stores exactly `len` entries (plus the usual
//! amortized-doubling slack), and for the single-digit populations a
//! stack actually holds, binary search + `memmove` beats pointer-chasing
//! tree nodes on the dispatch hot path too.
//!
//! Iteration order is **ascending by key** — identical to `BTreeMap` —
//! which is what keeps trace event order (and therefore the golden
//! fingerprint) byte-stable across the swap.

use std::fmt;

/// A map backed by a `Vec` of key-sorted `(K, V)` pairs.
///
/// Lookups are `O(log n)`, inserts/removes `O(n)` (memmove) — the right
/// trade for small, read-mostly populations. Inserting a key greater
/// than the current maximum is `O(1)` amortized (a push), which is the
/// common case for monotonic ids ([`crate::ModuleId`], [`crate::TimerId`]).
#[derive(Clone, PartialEq, Eq)]
pub struct VecMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord, V> VecMap<K, V> {
    /// An empty map. Does not allocate.
    pub const fn new() -> Self {
        VecMap { entries: Vec::new() }
    }

    fn idx(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.idx(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value stored under `key`, if any.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.idx(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.idx(key).is_ok()
    }

    /// Insert `value` under `key`, returning the previous value if the
    /// key was already present (same contract as `BTreeMap::insert`).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        // Fast path: monotonically increasing keys append.
        if self.entries.last().is_none_or(|(k, _)| *k < key) {
            self.grow_exact();
            self.entries.push((key, value));
            return None;
        }
        match self.idx(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.grow_exact();
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Grow capacity by exactly one slot when full, instead of `Vec`'s
    /// amortized doubling (minimum 4). These maps hold a handful of
    /// entries per stack and are built once at boot, then mutated only
    /// at protocol-switch or timer-churn rates — at a million stacks,
    /// doubling's slack is megabytes of dead capacity, while exact
    /// growth costs a few boot-time reallocations of tiny buffers.
    /// Removals keep capacity, so a map that churns at a steady size
    /// stops reallocating at its high-water mark.
    #[inline]
    fn grow_exact(&mut self) {
        if self.entries.len() == self.entries.capacity() {
            self.entries.reserve_exact(1);
        }
    }

    /// Remove and return the value stored under `key`, if any.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.idx(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The value under `key`, inserting `V::default()` first if absent
    /// (the `entry(k).or_default()` idiom).
    pub fn get_mut_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        let i = match self.idx(&key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, V::default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterate `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterate values mutably in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }

    /// Keep only the entries for which `f` returns `true`.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| f(k, v));
    }

    /// Bytes of heap backing this map (capacity, not just len) — feeds
    /// the structural memory audit.
    pub fn mem_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(K, V)>()
    }
}

impl<K: Ord, V> Default for VecMap<K, V> {
    fn default() -> Self {
        VecMap::new()
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for VecMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.entries.iter().map(|(k, v)| (k, v))).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: VecMap<u32, &str> = VecMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "five"), None);
        assert_eq!(m.insert(1, "one"), None);
        assert_eq!(m.insert(3, "three"), None);
        assert_eq!(m.insert(3, "tres"), Some("three"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&3), Some(&"tres"));
        assert!(m.contains_key(&1));
        assert!(!m.contains_key(&2));
        assert_eq!(m.remove(&1), Some("one"));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_key_sorted_like_btreemap() {
        let keys = [9u64, 2, 7, 4, 1, 8, 3];
        let mut m: VecMap<u64, u64> = VecMap::new();
        let mut b = std::collections::BTreeMap::new();
        for k in keys {
            m.insert(k, k * 10);
            b.insert(k, k * 10);
        }
        let ours: Vec<_> = m.iter().map(|(k, v)| (*k, *v)).collect();
        let theirs: Vec<_> = b.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(ours, theirs);
        let vals: Vec<_> = m.values().copied().collect();
        assert_eq!(vals, theirs.iter().map(|(_, v)| *v).collect::<Vec<_>>());
    }

    #[test]
    fn get_mut_or_default_matches_entry_or_default() {
        let mut m: VecMap<u32, Vec<u32>> = VecMap::new();
        m.get_mut_or_default(2).push(20);
        m.get_mut_or_default(1).push(10);
        m.get_mut_or_default(2).push(21);
        assert_eq!(m.get(&1), Some(&vec![10]));
        assert_eq!(m.get(&2), Some(&vec![20, 21]));
    }

    #[test]
    fn retain_filters_in_place() {
        let mut m: VecMap<u32, u32> = VecMap::new();
        for k in 0..10 {
            m.insert(k, k);
        }
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 5);
        assert!(m.contains_key(&4));
        assert!(!m.contains_key(&5));
    }
}
