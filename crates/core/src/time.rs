//! Virtual time: nanosecond-resolution instants and durations.
//!
//! The whole workspace measures time in integer nanoseconds so that the
//! deterministic simulator (`dpu-sim`) and the threaded runtime
//! (`dpu-runtime`) share one clock representation. [`Time`] is a point on
//! the timeline, [`Dur`] a span between points.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (virtual) time, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of (virtual) time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// The origin of the timeline.
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since the origin.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since the origin (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Fractional seconds since the origin (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn nanos(n: u64) -> Dur {
        Dur(n)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to nanoseconds.
    #[inline]
    pub fn secs_f64(s: f64) -> Dur {
        Dur((s * 1e9).round().max(0.0) as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds in this duration (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Fractional seconds in this duration (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// Convert to a `std::time::Duration` (used by the threaded runtime).
    #[inline]
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Dur::nanos(7).as_nanos(), 7);
        assert_eq!(Dur::micros(3).as_nanos(), 3_000);
        assert_eq!(Dur::millis(2).as_nanos(), 2_000_000);
        assert_eq!(Dur::secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Dur::secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::ZERO + Dur::millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!((t + Dur::millis(3)) - t, Dur::millis(3));
        assert_eq!(t.since(Time::ZERO), Dur::millis(5));
    }

    #[test]
    fn since_saturates() {
        let early = Time(10);
        let late = Time(20);
        assert_eq!(early.since(late), Dur::ZERO);
        assert_eq!(late.since(early), Dur(10));
    }

    #[test]
    fn dur_scaling_ops() {
        assert_eq!(Dur::millis(2) * 3, Dur::millis(6));
        assert_eq!(Dur::millis(6) / 3, Dur::millis(2));
        assert_eq!(Dur::millis(5).saturating_sub(Dur::millis(9)), Dur::ZERO);
    }

    #[test]
    fn reporting_conversions() {
        assert!((Dur::millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((Time(2_500_000).as_millis_f64() - 2.5).abs() < 1e-12);
        assert_eq!(Dur::millis(1).to_std(), std::time::Duration::from_millis(1));
    }
}
