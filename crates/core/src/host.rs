//! The unified host API: [`StackDriver`] owns a [`Stack`] plus its timer
//! queue and encapsulates the *canonical drive loop* every host used to
//! hand-duplicate — drain due timers, step the stack until idle, execute
//! the produced [`HostAction`]s, report the next wakeup deadline.
//!
//! The contract between a stack and the outside world is three calls:
//!
//! * [`StackDriver::inject`] — feed an external [`HostEvent`] in: a
//!   packet arrival, a timer expiry from a host-managed clock, or a
//!   control closure to run against the stack;
//! * [`StackDriver::poll`] — run the drive loop at time `now`, handing
//!   every network send to an [`ActionSink`], and learn from the returned
//!   [`Wakeup`] when the driver next needs CPU;
//! * [`ActionSink`] — implemented by the host; receives the
//!   [`HostAction::NetSend`]s the loop executes.
//!
//! Every host of the workspace is built on this API: `dpu-sim` drives
//! one `StackDriver` per simulated machine under a virtual clock (using
//! the split-phase [`StackDriver::step_raw`]/[`StackDriver::settle`] so
//! it can charge modeled CPU time per step), its conservative parallel
//! engine (`dpu_sim::par`) moves whole shards of drivers between worker
//! threads across epoch barriers (drivers own all per-stack mutable
//! state, so shard ownership transfers are plain `Send` moves — no
//! shared-state protocol beyond the barrier itself), and `dpu-runtime`
//! multiplexes many drivers per shard thread under the wall clock via
//! [`poll`]. The planned epoll/UDP hosts hang off the same three calls.
//!
//! # Timer ownership
//!
//! The driver owns the per-stack timer queue. [`HostAction::SetTimer`]
//! arms an entry; [`HostAction::CancelTimer`] marks it cancelled, and
//! cancelled entries are *purged* — lazily on pop, and eagerly by heap
//! rebuild once they outnumber live entries — so long soaks with
//! set/cancel churn (failure detectors, retransmit timers) do not
//! accumulate garbage. Hosts never see timer actions; they only need to
//! call [`StackDriver::poll`] again no later than the returned
//! [`Wakeup`] deadline.
//!
//! [`poll`]: StackDriver::poll

use crate::ids::{StackId, TimerId};
use crate::stack::{HostAction, Stack, StepInfo};
use crate::time::Time;
use bytes::Bytes;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::fmt;

/// A closure a host routes to the driver to run against its stack
/// (the sharded runtime's `with_stack`, a REPL command, ...).
pub type ControlFn = Box<dyn FnOnce(&mut Stack) + Send>;

/// An external event a host feeds into a [`StackDriver`].
pub enum HostEvent {
    /// A datagram arrived from stack `src`.
    Packet {
        /// Sending stack.
        src: StackId,
        /// Raw datagram contents.
        payload: Bytes,
    },
    /// A host-managed timer expired. Only needed by hosts that keep
    /// their own clocks; timers armed through [`HostAction::SetTimer`]
    /// are serviced by the driver itself.
    Timer(TimerId),
    /// Run a closure against the stack (control plane).
    Control(ControlFn),
}

impl fmt::Debug for HostEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostEvent::Packet { src, payload } => {
                f.debug_struct("Packet").field("src", src).field("len", &payload.len()).finish()
            }
            HostEvent::Timer(id) => f.debug_tuple("Timer").field(id).finish(),
            HostEvent::Control(_) => f.write_str("Control(..)"),
        }
    }
}

/// When a [`StackDriver`] next needs to be polled, as reported by
/// [`StackDriver::poll`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wakeup {
    /// No armed timers and no pending work: the driver only needs CPU
    /// when the host injects the next event.
    Idle,
    /// Poll again no later than this instant (the earliest armed timer).
    At(Time),
}

impl Wakeup {
    /// The deadline, if any.
    pub fn deadline(self) -> Option<Time> {
        match self {
            Wakeup::Idle => None,
            Wakeup::At(t) => Some(t),
        }
    }
}

/// Receiver of the network sends a [`StackDriver`] executes. Implemented
/// by the host: the simulator models latency/loss and schedules arrival
/// events; the sharded runtime routes to the destination shard's mailbox.
pub trait ActionSink {
    /// Stack `src` sent `payload` to stack `dst` at time `at`.
    ///
    /// `at` is the time the send was executed — under modeled CPU cost it
    /// may lie after the `now` passed to the driver call that produced it.
    fn net_send(&mut self, at: Time, src: StackId, dst: StackId, payload: Bytes);
}

/// A sink that drops every send, for tests and quiescent drains.
#[derive(Debug, Default)]
pub struct NullSink;

impl ActionSink for NullSink {
    fn net_send(&mut self, _at: Time, _src: StackId, _dst: StackId, _payload: Bytes) {}
}

/// Min-heap of armed timers with cancellation purging. Entries are
/// `(deadline, arm-sequence)` so simultaneous timers fire in arming
/// order, matching the FIFO tie-break of the event-heap hosts.
#[derive(Debug, Default)]
struct TimerQueue {
    heap: BinaryHeap<Reverse<(Time, u64, TimerId)>>,
    /// Ids cancelled while still in the heap. Purged lazily on pop and
    /// by rebuild once they outnumber live entries, so long-delay
    /// set/cancel churn cannot grow the heap without bound.
    cancelled: BTreeSet<TimerId>,
    seq: u64,
}

impl TimerQueue {
    fn arm(&mut self, at: Time, id: TimerId) {
        // TimerIds come from the stack's monotonic counter and are never
        // reused, so an arriving arm cannot collide with a cancelled id.
        debug_assert!(!self.cancelled.contains(&id), "timer id reuse");
        self.heap.push(Reverse((at, self.seq, id)));
        self.seq += 1;
    }

    fn cancel(&mut self, id: TimerId) {
        self.cancelled.insert(id);
        if self.cancelled.len() > 16 && self.cancelled.len() * 2 > self.heap.len() {
            let cancelled = std::mem::take(&mut self.cancelled);
            self.heap.retain(|Reverse((_, _, id))| !cancelled.contains(id));
        }
    }

    /// Earliest live deadline; drops cancelled entries it skips over.
    fn next_deadline(&mut self) -> Option<Time> {
        while let Some(Reverse((at, _, id))) = self.heap.peek() {
            if self.cancelled.remove(id) {
                self.heap.pop();
                continue;
            }
            return Some(*at);
        }
        None
    }

    /// Pop the earliest live entry if it is due at or before `now`.
    fn pop_due(&mut self, now: Time) -> Option<TimerId> {
        while let Some(Reverse((at, _, id))) = self.heap.peek() {
            if *at > now {
                return None;
            }
            let id = *id;
            self.heap.pop();
            if self.cancelled.remove(&id) {
                continue;
            }
            return Some(id);
        }
        None
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Owns one [`Stack`] plus its timer queue and runs the canonical drive
/// loop. See the [module docs](self) for the host contract.
pub struct StackDriver {
    stack: Stack,
    timers: TimerQueue,
    pending: VecDeque<HostEvent>,
}

impl StackDriver {
    /// Wrap a stack. Any actions the stack produced before wrapping are
    /// executed on the first [`StackDriver::poll`]/[`StackDriver::settle`].
    pub fn new(stack: Stack) -> StackDriver {
        StackDriver { stack, timers: TimerQueue::default(), pending: VecDeque::new() }
    }

    /// The driven stack's id.
    pub fn id(&self) -> StackId {
        self.stack.id()
    }

    /// Immutable access to the stack.
    pub fn stack(&self) -> &Stack {
        &self.stack
    }

    /// Mutable access to the stack. After mutating, call
    /// [`StackDriver::poll`] (or [`StackDriver::settle`]) so any actions
    /// the mutation produced are executed — `Sim::with_stack`-style
    /// hosts do this for their callers.
    pub fn stack_mut(&mut self) -> &mut Stack {
        &mut self.stack
    }

    /// Swap the stack's scratch pool with a host-owned one — the
    /// shard-pool loan handoff (see [`Stack::swap_scratch`]). Call
    /// before and after any encode-capable driver entry point.
    pub fn swap_scratch(&mut self, pool: &mut crate::wire::WireScratch) {
        self.stack.swap_scratch(pool);
    }

    /// Loan-handoff passthrough for the shard's dispatch buffer (see
    /// [`Stack::swap_queue`]).
    pub fn swap_queue(&mut self, buf: &mut crate::stack::DispatchBuf) {
        self.stack.swap_queue(buf);
    }

    /// Unwrap, discarding pending events and armed timers.
    pub fn into_stack(self) -> Stack {
        self.stack
    }

    /// Number of heap entries in the timer queue (live + not-yet-purged
    /// cancelled). Exposed for tests and host introspection.
    pub fn armed_timers(&self) -> usize {
        self.timers.len()
    }

    /// Structural estimate of this driver's resident bytes: the stack's
    /// own estimate ([`Stack::mem_bytes`]) plus the timer heap and the
    /// pending-event queue. Same caveat as the stack's: a floor for
    /// capacity planning, not an allocator-accurate number.
    pub fn mem_bytes(&self) -> usize {
        use std::mem::size_of;
        self.stack.mem_bytes()
            + self.timers.heap.len() * size_of::<(Time, u64, TimerId)>()
            + self.timers.cancelled.len() * size_of::<TimerId>()
            + self.pending.capacity() * size_of::<HostEvent>()
    }

    /// Queue an external event. Applied by the next
    /// [`StackDriver::poll`] (or [`StackDriver::absorb`]).
    pub fn inject(&mut self, ev: HostEvent) {
        self.pending.push_back(ev);
    }

    /// Apply all queued injected events to the stack at time `now`.
    /// Called by [`StackDriver::poll`]; virtual-time hosts call it
    /// directly so the application time matches the event's schedule.
    pub fn absorb(&mut self, now: Time) {
        while let Some(ev) = self.pending.pop_front() {
            match ev {
                HostEvent::Packet { src, payload } => self.stack.packet_in(now, src, payload),
                HostEvent::Timer(id) => self.stack.timer_fired(now, id),
                HostEvent::Control(f) => f(&mut self.stack),
            }
        }
    }

    /// Deliver one packet directly at time `now`: any queued injected
    /// events are absorbed first (preserving injection order), then the
    /// packet enters the stack — without a round-trip through the
    /// pending queue. Equivalent to `inject(HostEvent::Packet{..})`
    /// followed by [`StackDriver::absorb`], minus the queue churn; the
    /// simulator's packet-arrival path (its hottest event) uses this.
    #[inline]
    pub fn deliver(&mut self, now: Time, src: StackId, payload: Bytes) {
        if !self.pending.is_empty() {
            self.absorb(now);
        }
        self.stack.packet_in(now, src, payload);
    }

    /// The fused wake hook: fire every timer due at or before `now` and
    /// report the next armed deadline in the same pass — one call where
    /// hosts used to pair [`StackDriver::fire_due`] with
    /// [`StackDriver::next_deadline`] (two traversals of the timer
    /// heap's top). Virtual-time hosts batch their per-node wake
    /// handling through this.
    #[inline]
    pub fn wake(&mut self, now: Time) -> Option<Time> {
        self.fire_due(now);
        self.timers.next_deadline()
    }

    /// Fire every armed timer due at or before `now`. Returns how many
    /// fired. (Cancelled entries are purged, not fired.)
    pub fn fire_due(&mut self, now: Time) -> usize {
        let mut fired = 0;
        while let Some(id) = self.timers.pop_due(now) {
            self.stack.timer_fired(now, id);
            fired += 1;
        }
        fired
    }

    /// The earliest armed deadline, or `None` if no timers are armed.
    pub fn next_deadline(&mut self) -> Option<Time> {
        self.timers.next_deadline()
    }

    /// Whether the stack has dispatchable work queued.
    pub fn has_work(&self) -> bool {
        self.stack.has_work() || !self.pending.is_empty()
    }

    /// Split-phase stepping for hosts that charge modeled CPU cost:
    /// dispatch one stack step at `now` *without* executing the actions
    /// it produced. The host inspects the returned [`StepInfo`], decides
    /// the completion time, and calls [`StackDriver::settle`] with it.
    pub fn step_raw(&mut self, now: Time) -> Option<StepInfo> {
        self.stack.step(now)
    }

    /// Execute all actions the stack has produced, as of time `at`:
    /// timers arm relative to `at`, sends reach the sink stamped `at`.
    pub fn settle(&mut self, at: Time, sink: &mut dyn ActionSink) {
        let src = self.stack.id();
        for action in self.stack.drain_actions() {
            match action {
                HostAction::NetSend { dst, payload } => sink.net_send(at, src, dst, payload),
                HostAction::SetTimer { id, delay } => self.timers.arm(at + delay, id),
                HostAction::CancelTimer { id } => self.timers.cancel(id),
            }
        }
    }

    /// The canonical drive loop: absorb injected events, then repeat
    /// {fire due timers, step until idle, execute actions} until nothing
    /// is due and the stack is idle. Returns when to poll next.
    ///
    /// The loop is *bounded* two ways so a pathological module cannot
    /// wedge one `poll` call forever and starve the host's other work:
    /// at most [`MAX_POLL_ROUNDS`] fire/step rounds (zero-delay timer
    /// re-arm spin) and at most [`MAX_POLL_STEPS`] stack steps (a
    /// call/response cycle that never drains). On either bound the call
    /// returns `Wakeup::At(now)` — the stack still [`has
    /// work`](StackDriver::has_work) — and the host polls again after
    /// servicing its mailbox/event queue.
    pub fn poll(&mut self, now: Time, sink: &mut dyn ActionSink) -> Wakeup {
        self.absorb(now);
        let mut steps = 0usize;
        for _ in 0..MAX_POLL_ROUNDS {
            self.fire_due(now);
            while self.step_raw(now).is_some() {
                self.settle(now, sink);
                steps += 1;
                if steps >= MAX_POLL_STEPS {
                    return Wakeup::At(now);
                }
            }
            // Actions can be produced without a step (e.g. by a control
            // closure or a pre-wrap mutation); drain defensively.
            self.settle(now, sink);
            // A just-executed action may have armed an already-due timer.
            match self.timers.next_deadline() {
                Some(at) if at <= now => continue,
                Some(at) => return Wakeup::At(at),
                None => return Wakeup::Idle,
            }
        }
        Wakeup::At(now)
    }
}

/// Bound on the fire/step/settle rounds of one [`StackDriver::poll`]
/// call (see its docs). Generous: an honest stack re-enters the loop
/// only when an action armed a timer that is already due.
pub const MAX_POLL_ROUNDS: usize = 64;

/// Bound on stack steps dispatched by one [`StackDriver::poll`] call
/// (see its docs). Generous: steps are sub-microsecond, so an honest
/// burst this large still returns within milliseconds.
pub const MAX_POLL_STEPS: usize = 100_000;

impl fmt::Debug for StackDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StackDriver")
            .field("stack", &self.stack)
            .field("armed_timers", &self.timers.len())
            .field("pending_events", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServiceId;
    use crate::module::{Call, Module, Response};
    use crate::stack::{net_ops, FactoryRegistry, ModuleCtx, StackConfig};
    use crate::time::Dur;
    use crate::wire::Encode;
    use crate::ModuleId;

    /// Collects sends with their timestamps.
    #[derive(Default)]
    struct RecSink {
        sent: Vec<(Time, StackId, StackId, Bytes)>,
    }

    impl ActionSink for RecSink {
        fn net_send(&mut self, at: Time, src: StackId, dst: StackId, payload: Bytes) {
            self.sent.push((at, src, dst, payload));
        }
    }

    /// Replies "pong" to any "ping"; counts receipts.
    struct PingPong {
        got: usize,
    }

    impl Module for PingPong {
        fn kind(&self) -> &str {
            "pingpong"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(crate::svc::NET)]
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op != net_ops::RECV {
                return;
            }
            let (src, data): (StackId, Bytes) = resp.decode().unwrap();
            self.got += 1;
            if data.as_ref() == b"ping" {
                let reply = (src, Bytes::from_static(b"pong")).to_bytes();
                ctx.call(&ServiceId::new(crate::svc::NET), net_ops::SEND, reply);
            }
        }
    }

    /// Arms a short timer on start; re-arms until 3 beats; arms and
    /// immediately cancels a decoy each round.
    struct Beat {
        beats: u32,
    }

    impl Module for Beat {
        fn kind(&self) -> &str {
            "beat"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
            ctx.set_timer(Dur::millis(1), 1);
            let decoy = ctx.set_timer(Dur::secs(3600), 9);
            ctx.cancel_timer(decoy);
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
        fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _: TimerId, _: u64) {
            self.beats += 1;
            if self.beats < 3 {
                ctx.set_timer(Dur::millis(1), 1);
                let decoy = ctx.set_timer(Dur::secs(3600), 9);
                ctx.cancel_timer(decoy);
            }
        }
    }

    /// In these one-module stacks: net bridge is module 1, the test
    /// module is module 2.
    const PP: ModuleId = ModuleId(2);
    const BEAT: ModuleId = ModuleId(2);

    fn pingpong_driver() -> StackDriver {
        let mut s = Stack::new(StackConfig::nth(0, 2, 1), FactoryRegistry::new());
        s.add_module(Box::new(PingPong { got: 0 }));
        StackDriver::new(s)
    }

    #[test]
    fn poll_runs_start_work_and_reports_idle() {
        let mut d = pingpong_driver();
        let mut sink = RecSink::default();
        assert_eq!(d.poll(Time(5), &mut sink), Wakeup::Idle);
        assert!(sink.sent.is_empty());
        assert!(!d.has_work());
    }

    #[test]
    fn injected_packet_produces_timestamped_send() {
        let mut d = pingpong_driver();
        let mut sink = RecSink::default();
        d.poll(Time(0), &mut sink);
        d.inject(HostEvent::Packet { src: StackId(1), payload: Bytes::from_static(b"ping") });
        assert!(d.has_work());
        let w = d.poll(Time(42), &mut sink);
        assert_eq!(w, Wakeup::Idle);
        assert_eq!(sink.sent.len(), 1);
        let (at, src, dst, ref payload) = sink.sent[0];
        assert_eq!(at, Time(42));
        assert_eq!(src, StackId(0));
        assert_eq!(dst, StackId(1));
        assert_eq!(payload.as_ref(), b"pong");
    }

    #[test]
    fn control_closures_run_in_injection_order() {
        let mut d = pingpong_driver();
        let mut sink = RecSink::default();
        d.poll(Time(0), &mut sink);
        let data = (StackId(1), Bytes::from_static(b"hello")).to_bytes();
        d.inject(HostEvent::Control(Box::new(move |s: &mut Stack| {
            s.call_as(PP, &ServiceId::new(crate::svc::NET), net_ops::SEND, data);
        })));
        d.poll(Time(7), &mut sink);
        assert_eq!(sink.sent.len(), 1);
        assert_eq!(sink.sent[0].0, Time(7));
        assert_eq!(sink.sent[0].3.as_ref(), b"hello");
    }

    #[test]
    fn timers_fire_through_poll_and_wakeup_tracks_earliest() {
        let mut s = Stack::new(StackConfig::nth(0, 1, 1), FactoryRegistry::new());
        s.add_module(Box::new(Beat { beats: 0 }));
        let mut d = StackDriver::new(s);
        let mut sink = NullSink;
        let w = d.poll(Time::ZERO, &mut sink);
        assert_eq!(w, Wakeup::At(Time::ZERO + Dur::millis(1)));
        // Poll exactly at the deadline: the beat fires and re-arms.
        let w = d.poll(Time::ZERO + Dur::millis(1), &mut sink);
        assert_eq!(w, Wakeup::At(Time::ZERO + Dur::millis(2)));
        // Poll late: beat 2 fires and re-arms relative to `now`.
        let w = d.poll(Time::ZERO + Dur::secs(1), &mut sink);
        assert_eq!(w, Wakeup::At(Time::ZERO + Dur::secs(1) + Dur::millis(1)));
        // Final beat does not re-arm; only cancelled decoys remain, and
        // they are purged, not reported.
        let w = d.poll(Time::ZERO + Dur::secs(1) + Dur::millis(1), &mut sink);
        assert_eq!(w, Wakeup::Idle, "decoys are cancelled, no live timer remains");
        let beats = d.stack_mut().with_module::<Beat, _>(BEAT, |b| b.beats).expect("beat module");
        assert_eq!(beats, 3);
    }

    #[test]
    fn cancelled_timers_are_purged_not_retained() {
        struct Churner;
        impl Module for Churner {
            fn kind(&self) -> &str {
                "churner"
            }
            fn provides(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn requires(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
                // Long-soak pattern: arm a long timeout, cancel, re-arm.
                for _ in 0..1000 {
                    let t = ctx.set_timer(Dur::secs(3600), 1);
                    ctx.cancel_timer(t);
                }
                ctx.set_timer(Dur::secs(3600), 2);
            }
            fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
            fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
        }
        let mut s = Stack::new(StackConfig::nth(0, 1, 1), FactoryRegistry::new());
        s.add_module(Box::new(Churner));
        let mut d = StackDriver::new(s);
        d.poll(Time::ZERO, &mut NullSink);
        assert!(
            d.armed_timers() < 100,
            "cancelled entries must be purged, heap holds {}",
            d.armed_timers()
        );
        assert_eq!(d.next_deadline(), Some(Time::ZERO + Dur::secs(3600)));
    }

    #[test]
    fn zero_delay_rearming_timer_cannot_spin_poll_forever() {
        struct ZeroSpin;
        impl Module for ZeroSpin {
            fn kind(&self) -> &str {
                "zerospin"
            }
            fn provides(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn requires(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
                ctx.set_timer(Dur::ZERO, 1);
            }
            fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
            fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
            fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _: TimerId, _: u64) {
                ctx.set_timer(Dur::ZERO, 1);
            }
        }
        let mut s = Stack::new(StackConfig::nth(0, 1, 1), FactoryRegistry::new());
        s.add_module(Box::new(ZeroSpin));
        let mut d = StackDriver::new(s);
        // Must return (bounded), asking to be re-polled immediately.
        let w = d.poll(Time(5), &mut NullSink);
        assert_eq!(w, Wakeup::At(Time(5)));
    }

    #[test]
    fn endless_call_response_cycle_cannot_wedge_poll() {
        // Provides "c" and echoes every call; the partner below turns
        // every response into a fresh call — an infinite dispatch cycle
        // with no timers involved.
        struct EchoC;
        impl Module for EchoC {
            fn kind(&self) -> &str {
                "echoc"
            }
            fn provides(&self) -> Vec<ServiceId> {
                vec![ServiceId::new("c")]
            }
            fn requires(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
                ctx.respond(&call.service, call.op, call.data);
            }
            fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
        }
        struct Relentless;
        impl Module for Relentless {
            fn kind(&self) -> &str {
                "relentless"
            }
            fn provides(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn requires(&self) -> Vec<ServiceId> {
                vec![ServiceId::new("c")]
            }
            fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
                ctx.call(&ServiceId::new("c"), 1, Bytes::new());
            }
            fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
            fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, _: Response) {
                ctx.call(&ServiceId::new("c"), 1, Bytes::new());
            }
        }
        let mut s = Stack::new(StackConfig::nth(0, 1, 1), FactoryRegistry::new());
        let echo = s.add_module(Box::new(EchoC));
        s.add_module(Box::new(Relentless));
        s.bind(&ServiceId::new("c"), echo);
        let mut d = StackDriver::new(s);
        // Must return (step budget), asking to be re-polled immediately.
        let w = d.poll(Time(3), &mut NullSink);
        assert_eq!(w, Wakeup::At(Time(3)));
        assert!(d.has_work(), "the cycle is still pending, host re-polls");
    }

    #[test]
    fn split_phase_settle_stamps_action_time() {
        let mut d = pingpong_driver();
        d.poll(Time(0), &mut NullSink);
        d.inject(HostEvent::Packet { src: StackId(1), payload: Bytes::from_static(b"ping") });
        d.absorb(Time(10));
        let mut sink = RecSink::default();
        // Step at t=10 but settle at t=25 (modeled CPU cost), like Sim.
        while d.step_raw(Time(10)).is_some() {
            d.settle(Time(25), &mut sink);
        }
        assert_eq!(sink.sent.len(), 1);
        assert_eq!(sink.sent[0].0, Time(25));
    }

    #[test]
    fn timer_event_injection_fires_host_managed_timers() {
        let mut s = Stack::new(StackConfig::nth(0, 1, 1), FactoryRegistry::new());
        s.add_module(Box::new(Beat { beats: 0 }));
        let mut d = StackDriver::new(s);
        // Run on_start but do not let the driver's own queue fire: fish
        // the armed id out and inject the expiry as a host event instead.
        while d.step_raw(Time::ZERO).is_some() {}
        let actions = d.stack_mut().drain_actions();
        let first = actions
            .iter()
            .find_map(|a| match a {
                HostAction::SetTimer { id, .. } => Some(*id),
                _ => None,
            })
            .expect("beat armed a timer");
        d.inject(HostEvent::Timer(first));
        d.poll(Time(99), &mut NullSink);
        let beats = d.stack_mut().with_module::<Beat, _>(BEAT, |b| b.beats).unwrap();
        assert_eq!(beats, 1);
    }
}
