//! A small self-contained binary wire codec.
//!
//! All inter-module payloads and all network messages in the workspace are
//! encoded with this codec. It is a length-aware, varint-based format:
//!
//! * unsigned integers use LEB128 varints;
//! * signed integers use zigzag + varint;
//! * `String`, `Vec<T>`, `Bytes` are length-prefixed;
//! * enums encode a `u32` tag followed by the variant payload (by hand in
//!   each protocol crate).
//!
//! The codec exists because the offline dependency set contains `serde` but
//! no serde *format* crate; a direct `Encode`/`Decode` pair is smaller and
//! gives us exact message sizes for the simulator's bandwidth model.
//!
//! # Steady-state allocation-free encoding
//!
//! The wire format is **frozen** (the golden trace in
//! `tests/host_equivalence.rs` pins it byte for byte), but the *path* that
//! produces those bytes is built to avoid per-message allocation:
//!
//! * [`Encode::encoded_len`] reports the exact encoded size before any
//!   byte is written, so buffers are sized once and nested length
//!   prefixes are written *forward* — no intermediate buffer per layer;
//! * [`LenPrefixed`] wraps a value so it encodes as `uvarint(len)` +
//!   `encoding`, byte-identical to encoding `value.to_bytes()` as a
//!   [`Bytes`] field, letting a whole nested frame be written into one
//!   buffer;
//! * [`WireScratch`] is a reusable buffer pool: each stack (and therefore
//!   each `StackDriver`) owns one, and in steady state every emitted
//!   message reclaims the backing buffer of an earlier message whose
//!   consumers have dropped it — zero new backing allocations
//!   ([`ScratchStats`] counts them).
//!
//! Decoding is zero-copy: [`Bytes`] fields borrow the input buffer
//! (`split_to` is a pointer advance on the shared backing storage), and
//! `String` fields validate UTF-8 on the borrowed slice before the single
//! unavoidable allocation. Length prefixes are validated against the
//! remaining input *before* any allocation, so malformed frames cannot
//! trigger huge `with_capacity` calls.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Error produced when decoding malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// A varint ran over its maximum width.
    VarintOverflow,
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// An enum tag was not recognised by the decoder.
    BadTag(u32),
    /// A length prefix was implausibly large for the remaining input.
    BadLength(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::VarintOverflow => write!(f, "varint overflow"),
            WireError::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            WireError::BadTag(t) => write!(f, "unrecognised enum tag {t}"),
            WireError::BadLength(n) => write!(f, "implausible length prefix {n}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decoding result.
pub type WireResult<T> = Result<T, WireError>;

/// A value that can be written to the wire.
pub trait Encode {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Exact number of bytes [`Encode::encode`] will append.
    ///
    /// The contract `encoded_len() == encode(..).len()` is what allows
    /// forward length-prefix writing ([`LenPrefixed`]) and exact buffer
    /// sizing ([`WireScratch`]); it is property-tested for every message
    /// type in the workspace.
    fn encoded_len(&self) -> usize;

    /// Encode into a fresh, frozen buffer, sized exactly.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Encode through a reusable [`WireScratch`]; in steady state this
    /// reuses the backing buffer of an earlier message instead of
    /// allocating. The bytes produced are identical to
    /// [`Encode::to_bytes`].
    fn encode_into(&self, scratch: &mut WireScratch) -> Bytes
    where
        Self: Sized,
    {
        scratch.encode(self)
    }
}

/// Blanket impl: a reference encodes exactly like its referent.
impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, buf: &mut BytesMut) {
        (**self).encode(buf);
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

/// A value that can be read back from the wire.
pub trait Decode: Sized {
    /// Consume the encoding of `Self` from the front of `buf`.
    fn decode(buf: &mut Bytes) -> WireResult<Self>;

    /// Decode from a standalone buffer, requiring it to be fully consumed.
    fn from_bytes(bytes: &Bytes) -> WireResult<Self> {
        let mut buf = bytes.clone();
        let v = Self::decode(&mut buf)?;
        if buf.has_remaining() {
            return Err(WireError::BadLength(buf.remaining() as u64));
        }
        Ok(v)
    }
}

/// Exact number of bytes [`put_uvarint`] writes for `v`.
#[inline]
pub const fn uvarint_len(v: u64) -> usize {
    // ceil(significant_bits / 7), with 0 occupying one byte.
    let bits = 64 - (v | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Read a length prefix and validate it against the remaining input
/// **before any allocation**. Every encoded element (and every raw byte)
/// occupies at least one input byte, so a genuine length can never exceed
/// `buf.remaining()`; anything larger is a malformed frame and fails
/// here, before a `with_capacity` could be asked for gigabytes.
#[inline]
pub fn get_length_prefix(buf: &mut Bytes) -> WireResult<usize> {
    let len = get_uvarint(buf)?;
    if len > buf.remaining() as u64 {
        return Err(WireError::BadLength(len));
    }
    Ok(len as usize)
}

/// Write an unsigned LEB128 varint.
#[inline]
pub fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    // Fast path: the overwhelming share of fields (tags, ids, channels,
    // lengths) fit one byte.
    if v < 0x80 {
        buf.put_u8(v as u8);
        return;
    }
    // Staged in a stack array so the buffer is touched exactly once.
    let mut tmp = [0u8; 10];
    let mut n = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            tmp[n] = byte;
            n += 1;
            break;
        }
        tmp[n] = byte | 0x80;
        n += 1;
    }
    buf.put_slice(&tmp[..n]);
}

/// Read an unsigned LEB128 varint.
///
/// Parses over the buffer's contiguous slice and advances the cursor
/// *once* — an offset-window decode, instead of a bounds-checked
/// refcounted-cursor operation per byte. This is the hot inner loop of
/// batch decoding (every tag, id, and length prefix passes through
/// here), so the one-byte case is kept branch-minimal.
#[inline]
pub fn get_uvarint(buf: &mut Bytes) -> WireResult<u64> {
    let s: &[u8] = buf.chunk();
    let Some(&first) = s.first() else {
        return Err(WireError::Truncated);
    };
    if first < 0x80 {
        buf.advance(1);
        return Ok(u64::from(first));
    }
    let mut v: u64 = u64::from(first & 0x7f);
    let mut shift = 7u32;
    let mut n = 1usize;
    loop {
        let Some(&byte) = s.get(n) else {
            return Err(WireError::Truncated);
        };
        n += 1;
        if shift == 63 && byte > 1 {
            return Err(WireError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            buf.advance(n);
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::VarintOverflow);
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

macro_rules! impl_uint {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, buf: &mut BytesMut) {
                put_uvarint(buf, u64::from(*self));
            }
            fn encoded_len(&self) -> usize {
                uvarint_len(u64::from(*self))
            }
        }
        impl Decode for $ty {
            fn decode(buf: &mut Bytes) -> WireResult<Self> {
                let v = get_uvarint(buf)?;
                <$ty>::try_from(v).map_err(|_| WireError::VarintOverflow)
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Encode for usize {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, *self as u64);
    }
    fn encoded_len(&self) -> usize {
        uvarint_len(*self as u64)
    }
}

impl Decode for usize {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let v = get_uvarint(buf)?;
        usize::try_from(v).map_err(|_| WireError::VarintOverflow)
    }
}

impl Encode for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, zigzag(*self));
    }
    fn encoded_len(&self) -> usize {
        uvarint_len(zigzag(*self))
    }
}

impl Decode for i64 {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(unzigzag(get_uvarint(buf)?))
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        if !buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        Ok(buf.get_u8() != 0)
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        uvarint_len(self.len() as u64) + self.len()
    }
}

impl Decode for String {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let len = get_length_prefix(buf)?;
        // Validate and copy from the borrowed window, then advance the
        // cursor once — no intermediate `split_to` handle, so the only
        // allocation is the final owned copy of a known-valid string.
        let owned = match std::str::from_utf8(&buf.chunk()[..len]) {
            Ok(s) => s.to_owned(),
            Err(_) => return Err(WireError::InvalidUtf8),
        };
        buf.advance(len);
        Ok(owned)
    }
}

impl Encode for str {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        uvarint_len(self.len() as u64) + self.len()
    }
}

impl Encode for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        buf.put_slice(self);
    }
    fn encoded_len(&self) -> usize {
        uvarint_len(self.len() as u64) + self.len()
    }
}

impl Decode for Bytes {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let len = get_length_prefix(buf)?;
        // Zero-copy: a window into the shared backing buffer.
        Ok(buf.split_to(len))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        uvarint_len(self.len() as u64) + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        // Each element takes at least one byte on the wire, so the length
        // check bounds the allocation below by the input size. Collecting
        // from a sized range pre-allocates exactly and elides the
        // per-push capacity checks of a push loop.
        let len = get_length_prefix(buf)?;
        (0..len).map(|_| T::decode(buf)).collect()
    }
}

impl<T: Encode + Ord> Encode for BTreeSet<T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        uvarint_len(self.len() as u64) + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Decode + Ord> Decode for BTreeSet<T> {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let len = get_length_prefix(buf)?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        uvarint_len(self.len() as u64)
            + self.iter().map(|(k, v)| k.encoded_len() + v.encoded_len()).sum::<usize>()
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let len = get_length_prefix(buf)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(buf)?;
            let v = V::decode(buf)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        if !buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::BadTag(u32::from(t))),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, buf: &mut BytesMut) {
                $(self.$idx.encode(buf);)+
            }
            fn encoded_len(&self) -> usize {
                0 $(+ self.$idx.encoded_len())+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(buf: &mut Bytes) -> WireResult<Self> {
                Ok(($($name::decode(buf)?,)+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl Encode for crate::ids::StackId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for crate::ids::StackId {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(crate::ids::StackId(u32::decode(buf)?))
    }
}

impl Encode for crate::time::Time {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for crate::time::Time {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(crate::time::Time(u64::decode(buf)?))
    }
}

/// Encodes its referent behind a forward-written length prefix:
/// `uvarint(encoded_len)` followed by the encoding itself.
///
/// This is byte-identical to encoding `value.to_bytes()` as a [`Bytes`]
/// field, which is how layered frames used to be built — each layer
/// encoding into a fresh buffer that the next layer copied. Wrapping the
/// inner value in `LenPrefixed` instead writes the whole nested structure
/// into one buffer in a single pass. The receiver still decodes the field
/// as [`Bytes`] (zero-copy) and peels it with `from_bytes`.
pub struct LenPrefixed<'a, T: Encode + ?Sized>(pub &'a T);

impl<T: Encode + ?Sized> Encode for LenPrefixed<'_, T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.0.encoded_len() as u64);
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        let inner = self.0.encoded_len();
        uvarint_len(inner as u64) + inner
    }
}

/// Counters of one [`WireScratch`] pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Messages encoded through the scratch.
    pub emitted: u64,
    /// Messages whose backing buffer was reclaimed from an earlier
    /// message (no new backing allocation).
    pub reclaimed: u64,
    /// Messages that required a new backing allocation — a fresh buffer,
    /// or a reclaimed one that had to grow. In steady state this counter
    /// stops moving: that is the "zero steady-state allocations" property
    /// the benches assert.
    pub allocations: u64,
}

impl ScratchStats {
    /// Merge another pool's counters into this one (host aggregation).
    pub fn absorb(&mut self, other: ScratchStats) {
        self.emitted += other.emitted;
        self.reclaimed += other.reclaimed;
        self.allocations += other.allocations;
    }
}

/// How many emitted buffers a per-stack [`WireScratch`] keeps a handle
/// to for reclaim. Bounds both the scan cost per encode and the retained
/// memory (entries whose consumers are long-lived rotate out).
const SCRATCH_RETAIN: usize = 32;

/// Largest message a [`WireScratch`] will retain for reclaim. Messages
/// above this (jumbo batches) allocate per emission instead, so one
/// burst of huge messages cannot pin `SCRATCH_RETAIN` jumbo buffers per
/// stack for the process lifetime — with thousands of stacks per
/// process, that ratchet would be gigabytes of dead encode buffers.
const SCRATCH_RETAIN_MAX_BYTES: usize = 64 * 1024;

/// Entry budget of a shard-level pool ([`WireScratch::shard_pool`]). A
/// shard-level pool serves *every* stack of a shard, so at soak rates
/// the newest few hundred emissions are all still in flight (delivery
/// latency × shard message rate); the pool must be deep enough that the
/// *oldest* retained entries have had time to be consumed and become
/// reclaimable, or every encode degrades to a fresh allocation.
const SHARD_POOL_RETAIN: usize = 1024;

/// Total byte budget of a shard-level pool — the actual capacity knob
/// (the entry budget is a backstop against byte-tiny floods). 1 MB per
/// shard is 16 MB per 16-shard host, independent of stack count.
const SHARD_POOL_BYTES: usize = 1 << 20;

/// How many entries (oldest first) a shard-level pool scans per encode.
/// Oldest entries are the most likely to be unique again, so the
/// expected hit is at index ~0; the cap keeps the worst case (a burst
/// pinning everything) O(1) per encode instead of O(pool depth).
const SHARD_POOL_SCAN: usize = 32;

/// A reusable encode-buffer pool: the steady-state allocation-free path.
///
/// `encode` sizes the buffer exactly via [`Encode::encoded_len`], writes
/// the message, and hands out the frozen [`Bytes`] while *retaining a
/// clone* of it. On a later `encode`, any retained buffer whose consumers
/// have dropped their handles is reclaimed (`BytesMut::try_from(Bytes)`,
/// which succeeds only for a unique owner) and reused — so once traffic
/// reaches a steady state, no new backing buffers are allocated.
///
/// Two deployments, same mechanics, different budgets:
///
/// * **per-stack** ([`WireScratch::new`]): one pool inside every
///   [`crate::Stack`]; small retain window, scans everything.
/// * **shard-level** ([`WireScratch::shard_pool`]): one pool per host
///   shard, loaned to whichever stack is being driven (see
///   [`crate::Stack::swap_scratch`]); deeper retain window with a byte
///   budget and a bounded oldest-first scan, so retained encode memory
///   scales with *shards*, not with total stacks.
///
/// Either way the pool is single-threaded and needs no locking.
pub struct WireScratch {
    retained: VecDeque<Bytes>,
    /// Incremental Σ len over `retained` — keeps [`WireScratch::mem_bytes`]
    /// O(1), which matters now that stacks sample it per packet.
    retained_bytes: usize,
    cap_entries: usize,
    cap_bytes: usize,
    scan: usize,
    stats: ScratchStats,
}

impl Default for WireScratch {
    fn default() -> WireScratch {
        WireScratch::new()
    }
}

impl WireScratch {
    /// An empty pool with the per-stack budget (32 entries, unbounded
    /// total bytes — the per-entry retain cap already bounds it).
    pub fn new() -> WireScratch {
        WireScratch {
            retained: VecDeque::new(),
            retained_bytes: 0,
            cap_entries: SCRATCH_RETAIN,
            cap_bytes: usize::MAX,
            scan: usize::MAX,
            stats: ScratchStats::default(),
        }
    }

    /// An empty pool with the shard-level budget: deeper retain window
    /// (many stacks' in-flight messages coexist), a total byte budget,
    /// and a bounded oldest-first reclaim scan.
    pub fn shard_pool() -> WireScratch {
        WireScratch {
            retained: VecDeque::new(),
            retained_bytes: 0,
            cap_entries: SHARD_POOL_RETAIN,
            cap_bytes: SHARD_POOL_BYTES,
            scan: SHARD_POOL_SCAN,
            stats: ScratchStats::default(),
        }
    }

    /// Pool counters so far.
    pub fn stats(&self) -> ScratchStats {
        self.stats
    }

    /// Bytes currently pinned by the pool's retained buffer handles
    /// (an upper bound on what reclaim can recover; the buffers may be
    /// co-owned by in-flight messages). Feeds the hosts' structural
    /// memory audit. O(1).
    pub fn mem_bytes(&self) -> usize {
        self.retained_bytes
    }

    /// Encode `value`, reusing a reclaimed buffer when one is free.
    /// The produced bytes are identical to [`Encode::to_bytes`].
    pub fn encode<T: Encode + ?Sized>(&mut self, value: &T) -> Bytes {
        let len = value.encoded_len();
        let mut buf = self.take_buffer(len);
        value.encode(&mut buf);
        debug_assert_eq!(buf.len(), len, "encoded_len() disagrees with encode()");
        let out = buf.freeze();
        if len <= SCRATCH_RETAIN_MAX_BYTES {
            self.retained.push_back(out.clone());
            self.retained_bytes += len;
            while self.retained.len() > self.cap_entries || self.retained_bytes > self.cap_bytes {
                let dropped = self.retained.pop_front().expect("non-empty while over budget");
                self.retained_bytes -= dropped.len();
            }
        }
        self.stats.emitted += 1;
        out
    }

    /// A cleared buffer with capacity for `len` bytes: a reclaimed one if
    /// a retained handle within the scan window is uniquely owned again,
    /// else a fresh one. Still-shared entries are skipped with a cheap
    /// refcount peek (`Bytes::is_unique`), not moved around. The scan
    /// runs oldest-first: the older an emission, the likelier its
    /// consumers have dropped their handles.
    fn take_buffer(&mut self, len: usize) -> BytesMut {
        for i in 0..self.retained.len().min(self.scan) {
            if !self.retained[i].is_unique() {
                continue;
            }
            let candidate = self.retained.remove(i).expect("index in range");
            self.retained_bytes -= candidate.len();
            let Ok(mut buf) = BytesMut::try_from(candidate) else {
                // Unreachable for a single-threaded pool, but harmless.
                break;
            };
            if buf.capacity() < len {
                self.stats.allocations += 1;
            } else {
                self.stats.reclaimed += 1;
            }
            buf.clear();
            buf.reserve(len);
            return buf;
        }
        self.stats.allocations += 1;
        BytesMut::with_capacity(len)
    }
}

impl fmt::Debug for WireScratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WireScratch")
            .field("retained", &self.retained.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Encode a value into a frozen buffer (convenience free function).
pub fn to_bytes<T: Encode>(value: &T) -> Bytes {
    value.to_bytes()
}

/// Decode a value from a frozen buffer, requiring full consumption.
pub fn from_bytes<T: Decode>(bytes: &Bytes) -> WireResult<T> {
    T::from_bytes(bytes)
}

/// Wire-contract checking helpers, shared by every crate's codec tests.
/// Hidden from docs: test support, not API.
#[doc(hidden)]
pub mod testing {
    use super::*;

    /// Assert the full wire contract for one value of `T`:
    ///
    /// 1. `encoded_len() == encode(..).len()` (forward sizing is exact);
    /// 2. decode ∘ encode roundtrips at the byte level (checked by
    ///    re-encoding, so `T` needs no `PartialEq`);
    /// 3. decoding any strict prefix fails with an error — never panics,
    ///    never fabricates a value (every varint and length prefix is
    ///    validated against the remaining input);
    /// 4. decoding single-byte corruptions never panics.
    pub fn assert_wire_contract<T: Encode + Decode>(value: &T) {
        let bytes = to_bytes(value);
        assert_eq!(value.encoded_len(), bytes.len(), "encoded_len() != encode().len()");
        let scratch_bytes = WireScratch::new().encode(value);
        assert_eq!(scratch_bytes, bytes, "scratch encode differs from to_bytes");
        let back = T::from_bytes(&bytes).expect("roundtrip decode failed");
        assert_eq!(to_bytes(&back), bytes, "re-encoding the decoded value changed the bytes");
        for cut in 0..bytes.len() {
            let prefix = bytes.slice(..cut);
            assert!(T::from_bytes(&prefix).is_err(), "decode of {cut}-byte prefix succeeded");
        }
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut corrupt = bytes.to_vec();
                corrupt[i] ^= flip;
                // Must return (Ok or Err) — never panic, never overflow.
                let _ = T::from_bytes(&Bytes::from(corrupt));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let b = to_bytes(&v);
        let back: T = from_bytes(&b).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn uvarint_boundaries() {
        for v in [0u64, 1, 127, 128, 255, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_uvarint(&mut b).unwrap(), v);
            assert!(!b.has_remaining());
        }
    }

    #[test]
    fn uvarint_single_byte_for_small_values() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        put_uvarint(&mut buf, 200);
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut b = Bytes::from_static(&[0x80]);
        assert_eq!(get_uvarint(&mut b), Err(WireError::Truncated));
        let empty = Bytes::new();
        assert_eq!(u32::from_bytes(&empty), Err(WireError::Truncated));
    }

    #[test]
    fn varint_overflow_is_an_error() {
        let mut b =
            Bytes::from_static(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f]);
        assert_eq!(get_uvarint(&mut b), Err(WireError::VarintOverflow));
    }

    #[test]
    fn narrowing_rejects_oversized_values() {
        let wide = to_bytes(&(300u64));
        assert_eq!(u8::from_bytes(&wide), Err(WireError::VarintOverflow));
        let ok = to_bytes(&(250u64));
        assert_eq!(u8::from_bytes(&ok), Ok(250u8));
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(42u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(String::from("hello κόσμος"));
        roundtrip(String::new());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip((1u32, String::from("x"), false));
        roundtrip(BTreeSet::from([3u64, 1, 2]));
        roundtrip(BTreeMap::from([(1u32, String::from("a")), (2, String::from("b"))]));
        roundtrip(Bytes::from_static(b"payload"));
    }

    #[test]
    fn nested_containers() {
        roundtrip(vec![vec![1u64, 2], vec![], vec![3]]);
        roundtrip(Some(vec![(1u32, true), (2, false)]));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 2);
        buf.put_slice(&[0xff, 0xfe]);
        assert_eq!(String::from_bytes(&buf.freeze()), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 1_000_000);
        buf.put_u8(0);
        assert!(matches!(Vec::<u8>::from_bytes(&buf.freeze()), Err(WireError::BadLength(_))));
    }

    #[test]
    fn trailing_garbage_rejected_by_from_bytes() {
        let mut buf = BytesMut::new();
        7u32.encode(&mut buf);
        buf.put_u8(9); // trailing garbage
        assert!(matches!(u32::from_bytes(&buf.freeze()), Err(WireError::BadLength(1))));
    }

    #[test]
    fn option_bad_tag_rejected() {
        let b = Bytes::from_static(&[7]);
        assert_eq!(Option::<u8>::from_bytes(&b), Err(WireError::BadTag(7)));
    }

    #[test]
    fn stack_id_and_time_roundtrip() {
        roundtrip(crate::ids::StackId(5));
        roundtrip(crate::time::Time(123_456_789));
    }
}
