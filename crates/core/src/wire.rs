//! A small self-contained binary wire codec.
//!
//! All inter-module payloads and all network messages in the workspace are
//! encoded with this codec. It is a length-aware, varint-based format:
//!
//! * unsigned integers use LEB128 varints;
//! * signed integers use zigzag + varint;
//! * `String`, `Vec<T>`, `Bytes` are length-prefixed;
//! * enums encode a `u32` tag followed by the variant payload (by hand in
//!   each protocol crate).
//!
//! The codec exists because the offline dependency set contains `serde` but
//! no serde *format* crate; a direct `Encode`/`Decode` pair is smaller and
//! gives us exact message sizes for the simulator's bandwidth model.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Error produced when decoding malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// A varint ran over its maximum width.
    VarintOverflow,
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// An enum tag was not recognised by the decoder.
    BadTag(u32),
    /// A length prefix was implausibly large for the remaining input.
    BadLength(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::VarintOverflow => write!(f, "varint overflow"),
            WireError::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            WireError::BadTag(t) => write!(f, "unrecognised enum tag {t}"),
            WireError::BadLength(n) => write!(f, "implausible length prefix {n}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decoding result.
pub type WireResult<T> = Result<T, WireError>;

/// A value that can be written to the wire.
pub trait Encode {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Encode into a fresh, frozen buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// A value that can be read back from the wire.
pub trait Decode: Sized {
    /// Consume the encoding of `Self` from the front of `buf`.
    fn decode(buf: &mut Bytes) -> WireResult<Self>;

    /// Decode from a standalone buffer, requiring it to be fully consumed.
    fn from_bytes(bytes: &Bytes) -> WireResult<Self> {
        let mut buf = bytes.clone();
        let v = Self::decode(&mut buf)?;
        if buf.has_remaining() {
            return Err(WireError::BadLength(buf.remaining() as u64));
        }
        Ok(v)
    }
}

/// Write an unsigned LEB128 varint.
pub fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint.
pub fn get_uvarint(buf: &mut Bytes) -> WireResult<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err(WireError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::VarintOverflow);
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

macro_rules! impl_uint {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, buf: &mut BytesMut) {
                put_uvarint(buf, u64::from(*self));
            }
        }
        impl Decode for $ty {
            fn decode(buf: &mut Bytes) -> WireResult<Self> {
                let v = get_uvarint(buf)?;
                <$ty>::try_from(v).map_err(|_| WireError::VarintOverflow)
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Encode for usize {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, *self as u64);
    }
}

impl Decode for usize {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let v = get_uvarint(buf)?;
        usize::try_from(v).map_err(|_| WireError::VarintOverflow)
    }
}

impl Encode for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, zigzag(*self));
    }
}

impl Decode for i64 {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(unzigzag(get_uvarint(buf)?))
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        if !buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        Ok(buf.get_u8() != 0)
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let len = get_uvarint(buf)?;
        if len > buf.remaining() as u64 {
            return Err(WireError::BadLength(len));
        }
        let raw = buf.split_to(len as usize);
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl Encode for &str {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
}

impl Encode for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        buf.put_slice(self);
    }
}

impl Decode for Bytes {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let len = get_uvarint(buf)?;
        if len > buf.remaining() as u64 {
            return Err(WireError::BadLength(len));
        }
        Ok(buf.split_to(len as usize))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let len = get_uvarint(buf)?;
        // Each element takes at least one byte on the wire.
        if len > buf.remaining() as u64 {
            return Err(WireError::BadLength(len));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Encode + Ord> Encode for BTreeSet<T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode + Ord> Decode for BTreeSet<T> {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let len = get_uvarint(buf)?;
        if len > buf.remaining() as u64 {
            return Err(WireError::BadLength(len));
        }
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let len = get_uvarint(buf)?;
        if len > buf.remaining() as u64 {
            return Err(WireError::BadLength(len));
        }
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(buf)?;
            let v = V::decode(buf)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        if !buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::BadTag(u32::from(t))),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, buf: &mut BytesMut) {
                $(self.$idx.encode(buf);)+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(buf: &mut Bytes) -> WireResult<Self> {
                Ok(($($name::decode(buf)?,)+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl Encode for crate::ids::StackId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
}

impl Decode for crate::ids::StackId {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(crate::ids::StackId(u32::decode(buf)?))
    }
}

impl Encode for crate::time::Time {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
}

impl Decode for crate::time::Time {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(crate::time::Time(u64::decode(buf)?))
    }
}

/// Encode a value into a frozen buffer (convenience free function).
pub fn to_bytes<T: Encode>(value: &T) -> Bytes {
    value.to_bytes()
}

/// Decode a value from a frozen buffer, requiring full consumption.
pub fn from_bytes<T: Decode>(bytes: &Bytes) -> WireResult<T> {
    T::from_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let b = to_bytes(&v);
        let back: T = from_bytes(&b).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn uvarint_boundaries() {
        for v in [0u64, 1, 127, 128, 255, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_uvarint(&mut b).unwrap(), v);
            assert!(!b.has_remaining());
        }
    }

    #[test]
    fn uvarint_single_byte_for_small_values() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        put_uvarint(&mut buf, 200);
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut b = Bytes::from_static(&[0x80]);
        assert_eq!(get_uvarint(&mut b), Err(WireError::Truncated));
        let empty = Bytes::new();
        assert_eq!(u32::from_bytes(&empty), Err(WireError::Truncated));
    }

    #[test]
    fn varint_overflow_is_an_error() {
        let mut b =
            Bytes::from_static(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f]);
        assert_eq!(get_uvarint(&mut b), Err(WireError::VarintOverflow));
    }

    #[test]
    fn narrowing_rejects_oversized_values() {
        let wide = to_bytes(&(300u64));
        assert_eq!(u8::from_bytes(&wide), Err(WireError::VarintOverflow));
        let ok = to_bytes(&(250u64));
        assert_eq!(u8::from_bytes(&ok), Ok(250u8));
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(42u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(String::from("hello κόσμος"));
        roundtrip(String::new());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip((1u32, String::from("x"), false));
        roundtrip(BTreeSet::from([3u64, 1, 2]));
        roundtrip(BTreeMap::from([(1u32, String::from("a")), (2, String::from("b"))]));
        roundtrip(Bytes::from_static(b"payload"));
    }

    #[test]
    fn nested_containers() {
        roundtrip(vec![vec![1u64, 2], vec![], vec![3]]);
        roundtrip(Some(vec![(1u32, true), (2, false)]));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 2);
        buf.put_slice(&[0xff, 0xfe]);
        assert_eq!(String::from_bytes(&buf.freeze()), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 1_000_000);
        buf.put_u8(0);
        assert!(matches!(Vec::<u8>::from_bytes(&buf.freeze()), Err(WireError::BadLength(_))));
    }

    #[test]
    fn trailing_garbage_rejected_by_from_bytes() {
        let mut buf = BytesMut::new();
        7u32.encode(&mut buf);
        buf.put_u8(9); // trailing garbage
        assert!(matches!(u32::from_bytes(&buf.freeze()), Err(WireError::BadLength(1))));
    }

    #[test]
    fn option_bad_tag_rejected() {
        let b = Bytes::from_static(&[7]);
        assert_eq!(Option::<u8>::from_bytes(&b), Err(WireError::BadTag(7)));
    }

    #[test]
    fn stack_id_and_time_roundtrip() {
        roundtrip(crate::ids::StackId(5));
        roundtrip(crate::time::Time(123_456_789));
    }
}
