//! The workload/measurement probe: a module standing in for the
//! *application on top of the stack* (e.g. the replicated service using
//! atomic broadcast).
//!
//! The probe requires one configurable service (normally the indirection
//! interface `r-abcast`, or plain `abcast` in the no-replacement-layer
//! ablation), sends timestamped messages into it, and records every
//! delivery with its latency. Benchmarks read the records out with
//! [`crate::stack::Stack::with_module`]; correctness tests feed them into
//! [`crate::abcast_check::AbcastChecker`].

use crate::abcast_check::MsgId;
use crate::ids::{ServiceId, StackId};
use crate::module::{Call, Module, Op, Response};
use crate::stack::ModuleCtx;
use crate::time::Time;
use crate::wire::{Decode, Encode, WireResult};
use bytes::{Bytes, BytesMut};

/// Magic prefix distinguishing probe payloads from other users of a
/// shared broadcast service (e.g. group membership).
pub const PROBE_MAGIC: u32 = 0x5052_4F42; // "PROB"

/// The payload format the probe broadcasts. Protocol modules treat it as
/// opaque bytes; only probes produce and consume it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeMsg {
    /// Stack that originated the message.
    pub origin: StackId,
    /// Per-origin sequence number.
    pub seq: u64,
    /// Virtual send time, stamped by the sender.
    pub sent_at: Time,
    /// Padding to emulate a given application payload size.
    pub pad: Bytes,
}

impl ProbeMsg {
    /// The global message identity.
    pub fn id(&self) -> MsgId {
        (self.origin, self.seq)
    }
}

impl Encode for ProbeMsg {
    fn encode(&self, buf: &mut BytesMut) {
        PROBE_MAGIC.encode(buf);
        self.origin.encode(buf);
        self.seq.encode(buf);
        self.sent_at.encode(buf);
        self.pad.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        PROBE_MAGIC.encoded_len()
            + self.origin.encoded_len()
            + self.seq.encoded_len()
            + self.sent_at.encoded_len()
            + self.pad.encoded_len()
    }
}

impl Decode for ProbeMsg {
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let magic = u32::decode(buf)?;
        if magic != PROBE_MAGIC {
            return Err(crate::wire::WireError::BadTag(magic));
        }
        Ok(ProbeMsg {
            origin: StackId::decode(buf)?,
            seq: u64::decode(buf)?,
            sent_at: Time::decode(buf)?,
            pad: Bytes::decode(buf)?,
        })
    }
}

/// One recorded delivery at this probe's stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Message identity.
    pub msg: MsgId,
    /// When the origin sent it.
    pub sent_at: Time,
    /// When this stack delivered it.
    pub delivered_at: Time,
}

impl DeliveryRecord {
    /// End-to-end latency observed at this stack (the paper's `t_i(m)`).
    pub fn latency(&self) -> crate::time::Dur {
        self.delivered_at.since(self.sent_at)
    }
}

/// The probe module. See the module-level docs.
pub struct Probe {
    service: ServiceId,
    send_op: Op,
    deliver_op: Op,
    pad: usize,
    next_seq: u64,
    sent: Vec<(MsgId, Time)>,
    delivered: Vec<DeliveryRecord>,
}

impl Probe {
    /// A probe attached to `service`, using operation `send_op` for
    /// downward calls and recording responses with `deliver_op`. `pad`
    /// bytes of zero padding emulate the application payload size.
    pub fn new(service: ServiceId, send_op: Op, deliver_op: Op, pad: usize) -> Probe {
        Probe {
            service,
            send_op,
            deliver_op,
            pad,
            next_seq: 0,
            sent: Vec::new(),
            delivered: Vec::new(),
        }
    }

    /// Build the next message payload for this stack, stamping `now`.
    /// The host passes the returned bytes to
    /// [`crate::stack::Stack::call_as`] targeting this probe's service.
    pub fn next_payload(&mut self, me: StackId, now: Time) -> Bytes {
        let msg = ProbeMsg {
            origin: me,
            seq: self.next_seq,
            sent_at: now,
            pad: Bytes::from(vec![0u8; self.pad]),
        };
        self.next_seq += 1;
        self.sent.push((msg.id(), now));
        msg.to_bytes()
    }

    /// The service this probe calls.
    pub fn service(&self) -> &ServiceId {
        &self.service
    }

    /// The send operation of the attached service.
    pub fn send_op(&self) -> Op {
        self.send_op
    }

    /// Messages sent from this stack: `(id, send time)`.
    pub fn sent(&self) -> &[(MsgId, Time)] {
        &self.sent
    }

    /// Deliveries recorded at this stack, in delivery order.
    pub fn delivered(&self) -> &[DeliveryRecord] {
        &self.delivered
    }

    /// Drain recorded deliveries (keeps memory bounded in long runs).
    pub fn take_delivered(&mut self) -> Vec<DeliveryRecord> {
        std::mem::take(&mut self.delivered)
    }
}

impl Module for Probe {
    fn kind(&self) -> &str {
        "probe"
    }

    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }

    fn requires(&self) -> Vec<ServiceId> {
        vec![self.service.clone()]
    }

    fn on_call(&mut self, _ctx: &mut ModuleCtx<'_>, _call: Call) {}

    fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op != self.deliver_op || resp.service != self.service {
            return;
        }
        if let Ok(msg) = resp.decode::<ProbeMsg>() {
            let now = ctx.now();
            // The probe sees every end-to-end delivery, so it is where
            // latency lands in the telemetry histogram and where a
            // pending switch record learns its first post-switch
            // delivery.
            let latency = now.as_nanos().saturating_sub(msg.sent_at.as_nanos());
            ctx.telemetry().note_delivery(now.as_nanos(), latency);
            self.delivered.push(DeliveryRecord {
                msg: msg.id(),
                sent_at: msg.sent_at,
                delivered_at: now,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{FactoryRegistry, ModuleCtx, Stack, StackConfig};
    use crate::wire;

    #[test]
    fn probe_msg_roundtrip() {
        let m = ProbeMsg {
            origin: StackId(3),
            seq: 42,
            sent_at: Time(1000),
            pad: Bytes::from(vec![0u8; 16]),
        };
        let b = wire::to_bytes(&m);
        let back: ProbeMsg = wire::from_bytes(&b).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.id(), (StackId(3), 42));
    }

    #[test]
    fn next_payload_increments_seq_and_records() {
        let mut p = Probe::new(ServiceId::new("abcast"), 1, 2, 8);
        let b1 = p.next_payload(StackId(0), Time(5));
        let b2 = p.next_payload(StackId(0), Time(9));
        let m1: ProbeMsg = wire::from_bytes(&b1).unwrap();
        let m2: ProbeMsg = wire::from_bytes(&b2).unwrap();
        assert_eq!(m1.seq, 0);
        assert_eq!(m2.seq, 1);
        assert_eq!(m1.pad.len(), 8);
        assert_eq!(p.sent().len(), 2);
        assert_eq!(p.sent()[1], ((StackId(0), 1), Time(9)));
    }

    /// An echo provider for the probe's service: immediately responds with
    /// the same payload (a degenerate "atomic broadcast" on one stack).
    struct LoopSvc {
        service: ServiceId,
    }

    impl Module for LoopSvc {
        fn kind(&self) -> &str {
            "loopsvc"
        }
        fn provides(&self) -> Vec<ServiceId> {
            vec![self.service.clone()]
        }
        fn requires(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
            ctx.respond(&call.service, 2, call.data);
        }
        fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
    }

    #[test]
    fn probe_records_latency_through_a_stack() {
        let svc = ServiceId::new("abcast");
        let mut stack = Stack::new(StackConfig::nth(0, 1, 1), FactoryRegistry::new());
        let provider = stack.add_module(Box::new(LoopSvc { service: svc.clone() }));
        let probe_id = stack.add_module(Box::new(Probe::new(svc.clone(), 1, 2, 0)));
        stack.bind(&svc, provider);
        let payload = stack
            .with_module::<Probe, _>(probe_id, |p| p.next_payload(StackId(0), Time(100)))
            .unwrap();
        stack.call_as(probe_id, &svc, 1, payload);
        let mut t = Time(100);
        while stack.step(t).is_some() {
            t = Time(t.0 + 50);
        }
        let recs = stack.with_module::<Probe, _>(probe_id, |p| p.delivered().to_vec()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].msg, (StackId(0), 0));
        assert_eq!(recs[0].sent_at, Time(100));
        assert!(recs[0].delivered_at >= Time(100));
        assert_eq!(recs[0].latency(), recs[0].delivered_at.since(Time(100)));
    }

    #[test]
    fn probe_ignores_other_ops_and_services() {
        let svc = ServiceId::new("abcast");
        let mut p = Probe::new(svc.clone(), 1, 2, 0);
        // Build a response with the wrong op via a fake dispatch: easiest
        // is to check take_delivered on a fresh probe stays empty.
        assert!(p.take_delivered().is_empty());
        assert_eq!(p.service(), &svc);
        assert_eq!(p.send_op(), 1);
    }
}
