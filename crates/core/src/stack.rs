//! The protocol [`Stack`]: the set of modules on one machine, their
//! dynamic service bindings, and the dispatch engine.
//!
//! # Execution model
//!
//! A stack is a deterministic, single-threaded, run-to-completion engine.
//! All pending work (service calls, responses, timer expirations, module
//! lifecycle events) sits in an internal FIFO; the *host* — the
//! deterministic simulator (`dpu-sim`) or the threaded runtime
//! (`dpu-runtime`) — repeatedly invokes [`Stack::step`] to dispatch one
//! item to one module handler. Handlers interact with the world only
//! through [`ModuleCtx`], which enqueues further work and emits
//! [`HostAction`]s (network sends, timer arming) for the host to execute.
//!
//! This split is what lets the same protocol modules run unchanged under
//! virtual time (for reproducible experiments) and real time.
//!
//! # Dynamic update hooks (paper §2, §4)
//!
//! * [`Stack::bind`] / [`Stack::unbind`] change which module provides a
//!   service; at most one module is bound per service.
//! * A call to an unbound service **blocks** (is queued) until a module is
//!   bound — the weak stack-well-formedness regime. The trace records
//!   [`TraceEvent::BlockedCall`]/[`TraceEvent::ReleasedCall`] so checkers
//!   can verify both regimes.
//! * [`Stack::install`] implements the recursive `create_module` procedure
//!   of Algorithm 1 (lines 22–28): create the module, bind its provided
//!   services, then recursively create default providers for any required
//!   service that has no bound module.

use crate::ids::{ModuleId, ServiceId, StackId, TimerId};
use crate::module::{Call, Module, ModuleSpec, Op, Response};
use crate::time::{Dur, Time};
use crate::trace::{TraceEvent, TraceLog};
use crate::vecmap::VecMap;
use crate::wire::{Encode, ScratchStats, WireError, WireScratch};
use bytes::Bytes;
use dpu_telemetry::{StackTelemetry, TelemetryConfig};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Operation codes of the built-in `net` service (the host boundary).
pub mod net_ops {
    use crate::module::Op;
    /// Downward call: send a datagram. Payload: `(StackId dst, Bytes data)`.
    pub const SEND: Op = 1;
    /// Upward response: a datagram arrived. Payload: `(StackId src, Bytes data)`.
    pub const RECV: Op = 2;
}

/// An effect a stack asks its host to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HostAction {
    /// Transmit `payload` to stack `dst` over the (unreliable) network.
    NetSend {
        /// Destination stack.
        dst: StackId,
        /// Raw datagram contents.
        payload: Bytes,
    },
    /// Arm a one-shot timer; the host must call
    /// [`Stack::timer_fired`] with `id` after `delay` elapses (unless
    /// cancelled).
    SetTimer {
        /// Timer handle.
        id: TimerId,
        /// Delay from now.
        delay: Dur,
    },
    /// Disarm a previously set timer. Firing a cancelled timer is a no-op,
    /// so hosts may ignore this if inconvenient.
    CancelTimer {
        /// Timer handle.
        id: TimerId,
    },
}

/// Errors from stack reconfiguration operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackError {
    /// No factory registered for the requested module kind.
    UnknownKind(String),
    /// A required service has no bound provider and no default provider
    /// spec was configured (Algorithm 1, line 27 failed to "find a module
    /// q providing service s").
    NoDefaultProvider(ServiceId),
    /// The referenced module does not exist (destroyed or never created).
    UnknownModule(ModuleId),
    /// A parameter blob failed to decode.
    Wire(WireError),
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::UnknownKind(k) => write!(f, "no factory for module kind {k:?}"),
            StackError::NoDefaultProvider(s) => {
                write!(f, "no default provider configured for service {s}")
            }
            StackError::UnknownModule(m) => write!(f, "unknown module {m}"),
            StackError::Wire(e) => write!(f, "parameter decode error: {e}"),
        }
    }
}

impl std::error::Error for StackError {}

impl From<WireError> for StackError {
    fn from(e: WireError) -> StackError {
        StackError::Wire(e)
    }
}

/// What kind of work one [`Stack::step`] dispatched — hosts use this to
/// charge CPU cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepCategory {
    /// A service call was dispatched to its provider.
    Call,
    /// A response was dispatched to a requirer.
    Response,
    /// A timer handler ran.
    Timer,
    /// A module's `on_start` ran.
    Start,
    /// A module's `on_stop` ran (module removed afterwards).
    Stop,
}

/// Report of one dispatched step.
#[derive(Clone, Debug)]
pub struct StepInfo {
    /// The module whose handler ran.
    pub module: ModuleId,
    /// Kind of work dispatched.
    pub category: StepCategory,
    /// The service involved, for calls/responses.
    pub service: Option<ServiceId>,
    /// The operation involved, for calls/responses.
    pub op: Option<Op>,
}

/// A boxed module constructor, as stored in the registry.
pub type ModuleFactory = Box<dyn Fn(&ModuleSpec) -> Box<dyn Module> + Send>;

/// Registry of module factories, keyed by kind name.
///
/// A factory builds a fresh module instance from a [`ModuleSpec`]. The
/// registry is consulted by [`Stack::install`] and by the recursive
/// default-provider creation of Algorithm 1.
#[derive(Default)]
pub struct FactoryRegistry {
    factories: BTreeMap<String, ModuleFactory>,
}

impl FactoryRegistry {
    /// An empty registry.
    pub fn new() -> FactoryRegistry {
        FactoryRegistry::default()
    }

    /// Register a factory for `kind`. Later registrations replace earlier
    /// ones.
    pub fn register(
        &mut self,
        kind: impl Into<String>,
        f: impl Fn(&ModuleSpec) -> Box<dyn Module> + Send + 'static,
    ) {
        self.factories.insert(kind.into(), Box::new(f));
    }

    /// Build a module from `spec`, if its kind is registered.
    pub fn build(&self, spec: &ModuleSpec) -> Result<Box<dyn Module>, StackError> {
        match self.factories.get(&spec.kind) {
            Some(f) => Ok(f(spec)),
            None => Err(StackError::UnknownKind(spec.kind.clone())),
        }
    }

    /// Whether a factory for `kind` exists.
    pub fn contains(&self, kind: &str) -> bool {
        self.factories.contains_key(kind)
    }
}

impl fmt::Debug for FactoryRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FactoryRegistry")
            .field("kinds", &self.factories.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Static configuration of a stack.
#[derive(Clone, Debug)]
pub struct StackConfig {
    /// This stack's id (the machine index `i`).
    pub id: StackId,
    /// All stacks in the system, including this one, in a globally agreed
    /// order. Shared: every stack of a host holds the same allocation
    /// (build it once with [`StackConfig::peer_table`]) — an owned vector
    /// per stack would cost O(n²) bytes across a simulation.
    pub peers: Arc<[StackId]>,
    /// Seed for the stack's deterministic RNG (mixed with the stack id).
    pub seed: u64,
    /// Whether to record a [`TraceLog`].
    pub trace: bool,
    /// Nodes per topology cluster, when the host places the stacks on a
    /// clustered topology (stack `i` belongs to cluster `i /
    /// cluster_size`, mirroring the simulator's topology rule). `None`
    /// on flat hosts: locality-aware protocols must degenerate to a
    /// single cluster spanning the whole group.
    pub cluster_size: Option<u32>,
    /// Observability switchboard (histograms, switch timeline, flight
    /// recorder). On by default like `trace`; capacity-scale hosts pass
    /// [`TelemetryConfig::off`] to shrink each stack by the telemetry
    /// block.
    pub telemetry: TelemetryConfig,
}

impl StackConfig {
    /// Configuration for stack `id` out of `n` stacks `0..n`.
    ///
    /// Builds a fresh peer table per call; hosts constructing many
    /// stacks should call [`StackConfig::peer_table`] once and share it.
    pub fn nth(id: u32, n: u32, seed: u64) -> StackConfig {
        StackConfig {
            id: StackId(id),
            peers: Self::peer_table(n),
            seed,
            trace: true,
            cluster_size: None,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// The canonical peer table for a group of `n` stacks `0..n`, ready
    /// to be shared across every [`StackConfig`] of the group.
    pub fn peer_table(n: u32) -> Arc<[StackId]> {
        (0..n).map(StackId).collect()
    }
}

enum Delivery {
    Call { to: ModuleId, call: Call },
    Response { to: ModuleId, resp: Response },
    Timer { to: ModuleId, id: TimerId, tag: u64 },
    Start { to: ModuleId },
    Stop { to: ModuleId },
}

struct ModuleSlot {
    module: Option<Box<dyn Module>>,
    kind: String,
    provides: Vec<ServiceId>,
    requires: Vec<ServiceId>,
}

/// Shard-owned dispatch-queue capacity, loaned to stacks around
/// dispatch via [`Stack::swap_queue`]. A dispatch cascade's enqueue
/// burst (a timer handler fanning out calls, a packet fanning out
/// responses) ratchets a queue's capacity to its peak; with the loan,
/// that capacity is paid once per shard instead of once per stack —
/// at a million stacks the difference is the better part of a
/// kilobyte each. The buffer is empty between loans apart from the
/// capacity it holds.
#[derive(Default)]
pub struct DispatchBuf {
    queue: VecDeque<Delivery>,
}

impl DispatchBuf {
    /// An empty buffer; capacity grows to the shard's peak cascade.
    pub fn new() -> DispatchBuf {
        DispatchBuf::default()
    }

    /// Heap bytes held (capacity, matching the allocator's view).
    pub fn mem_bytes(&self) -> usize {
        self.queue.capacity() * std::mem::size_of::<Delivery>()
    }
}

/// The built-in module bound to the `net` service: it turns `net.SEND`
/// calls into [`HostAction::NetSend`]. Packet arrivals are injected by the
/// host via [`Stack::packet_in`] and fan out as `net.RECV` responses.
struct NetBridge;

impl Module for NetBridge {
    fn kind(&self) -> &str {
        "net.bridge"
    }

    fn provides(&self) -> Vec<ServiceId> {
        vec![ServiceId::new(crate::svc::NET)]
    }

    fn requires(&self) -> Vec<ServiceId> {
        Vec::new()
    }

    fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
        if call.op == net_ops::SEND {
            if let Ok((dst, payload)) = call.decode::<(StackId, Bytes)>() {
                ctx.net_send(dst, payload);
            }
        }
    }

    fn on_response(&mut self, _ctx: &mut ModuleCtx<'_>, _resp: Response) {}
}

/// The set of modules located on one machine, plus their bindings
/// (paper §2).
pub struct Stack {
    id: StackId,
    peers: Arc<[StackId]>,
    cluster_size: Option<u32>,
    now: Time,
    modules: VecMap<ModuleId, ModuleSlot>,
    bindings: VecMap<ServiceId, ModuleId>,
    /// Modules requiring each service, in registration order — the
    /// response fan-out set.
    requirers: VecMap<ServiceId, Vec<ModuleId>>,
    /// Calls blocked on an unbound service (weak stack-well-formedness).
    waiting: VecMap<ServiceId, VecDeque<Call>>,
    queue: VecDeque<Delivery>,
    actions: Vec<HostAction>,
    timers: VecMap<TimerId, (ModuleId, u64)>,
    factory: FactoryRegistry,
    defaults: VecMap<ServiceId, ModuleSpec>,
    trace: TraceLog,
    next_module: u64,
    next_timer: u64,
    rng_state: u64,
    crashed: bool,
    net_bridge: ModuleId,
    /// Reusable encode buffers for every message this stack produces —
    /// the steady-state allocation-free path. One scratch per stack means
    /// one per `StackDriver`, whichever host owns the driver.
    scratch: WireScratch,
    /// Observability state (histograms, switch timeline, flight ring).
    /// Single-threaded like the rest of the stack, so recording is plain
    /// integer arithmetic; never feeds back into protocol behaviour.
    telemetry: StackTelemetry,
}

impl Stack {
    /// Create a stack with the given configuration and factory registry.
    ///
    /// The built-in net bridge is created and bound to the `net` service.
    pub fn new(cfg: StackConfig, factory: FactoryRegistry) -> Stack {
        let trace = if cfg.trace { TraceLog::new() } else { TraceLog::disabled() };
        let mut stack = Stack {
            id: cfg.id,
            peers: cfg.peers,
            cluster_size: cfg.cluster_size,
            now: Time::ZERO,
            modules: VecMap::new(),
            bindings: VecMap::new(),
            requirers: VecMap::new(),
            waiting: VecMap::new(),
            queue: VecDeque::new(),
            actions: Vec::new(),
            timers: VecMap::new(),
            factory,
            defaults: VecMap::new(),
            trace,
            next_module: 1,
            next_timer: 1,
            // SplitMix-style seed scramble so stacks with consecutive ids
            // do not share low-entropy streams.
            rng_state: cfg.seed ^ (u64::from(cfg.id.0) + 1).wrapping_mul(0x9E3779B97F4A7C15),
            crashed: false,
            net_bridge: ModuleId(0),
            scratch: WireScratch::new(),
            telemetry: StackTelemetry::new(&cfg.telemetry),
        };
        let bridge = stack.insert_module(Box::new(NetBridge));
        stack.net_bridge = bridge;
        stack.bind(&ServiceId::new(crate::svc::NET), bridge);
        stack
    }

    /// This stack's id.
    pub fn id(&self) -> StackId {
        self.id
    }

    /// All stacks of the system (including this one).
    pub fn peers(&self) -> &[StackId] {
        &self.peers
    }

    /// Nodes per topology cluster, if the host placed this stack on a
    /// clustered topology (see [`StackConfig::cluster_size`]).
    pub fn cluster_size(&self) -> Option<u32> {
        self.cluster_size
    }

    /// The current virtual time, as last told by the host.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Whether the stack has crashed. A crashed stack ignores all input.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Number of pending internal deliveries.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether [`Stack::step`] has work to do.
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty() && !self.crashed
    }

    /// The module currently bound to `service`, if any.
    pub fn bound(&self, service: &ServiceId) -> Option<ModuleId> {
        self.bindings.get(service).copied()
    }

    /// The kind name of a module.
    pub fn module_kind(&self, id: ModuleId) -> Option<&str> {
        self.modules.get(&id).map(|s| s.kind.as_str())
    }

    /// Ids and kinds of all live modules.
    pub fn modules(&self) -> impl Iterator<Item = (ModuleId, &str)> {
        self.modules.iter().map(|(id, s)| (*id, s.kind.as_str()))
    }

    /// Configure the default provider spec for `service`, used by the
    /// recursive module creation of Algorithm 1 (line 27: "find a module q
    /// providing service s").
    pub fn set_default_provider(&mut self, service: ServiceId, spec: ModuleSpec) {
        self.defaults.insert(service, spec);
    }

    /// Access the recorded trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Take the recorded trace, leaving an empty one (same enablement).
    pub fn take_trace(&mut self) -> TraceLog {
        let enabled = self.trace.is_enabled();
        std::mem::replace(
            &mut self.trace,
            if enabled { TraceLog::new() } else { TraceLog::disabled() },
        )
    }

    /// Insert an already-constructed module (no binding, no recursion).
    /// Useful for probes and tests; protocol code normally goes through
    /// [`Stack::install`].
    pub fn add_module(&mut self, module: Box<dyn Module>) -> ModuleId {
        self.insert_module(module)
    }

    /// Create a module from `spec` via the factory registry and wire it in
    /// per Algorithm 1 lines 22–28: bind each provided service that is
    /// currently unbound, then recursively create default providers for
    /// required services with no bound module.
    pub fn install(&mut self, spec: &ModuleSpec) -> Result<ModuleId, StackError> {
        let module = self.factory.build(spec)?;
        let id = self.insert_module(module);
        self.wire_in(id)?;
        Ok(id)
    }

    fn wire_in(&mut self, id: ModuleId) -> Result<(), StackError> {
        let (provides, requires) = {
            let slot = self.modules.get(&id).ok_or(StackError::UnknownModule(id))?;
            (slot.provides.clone(), slot.requires.clone())
        };
        for svc in &provides {
            if !self.bindings.contains_key(svc) {
                self.bind(svc, id);
            }
        }
        for svc in &requires {
            if !self.bindings.contains_key(svc) {
                let spec = self
                    .defaults
                    .get(svc)
                    .cloned()
                    .ok_or_else(|| StackError::NoDefaultProvider(svc.clone()))?;
                let dep = self.factory.build(&spec)?;
                let dep_id = self.insert_module(dep);
                self.wire_in(dep_id)?;
            }
        }
        Ok(())
    }

    fn insert_module(&mut self, module: Box<dyn Module>) -> ModuleId {
        let id = ModuleId(self.next_module);
        self.next_module += 1;
        let kind = module.kind().to_string();
        let provides = module.provides();
        let requires = module.requires();
        for svc in &requires {
            self.requirers.get_mut_or_default(svc.clone()).push(id);
        }
        self.modules.insert(
            id,
            ModuleSlot { module: Some(module), kind: kind.clone(), provides, requires },
        );
        self.trace.push(self.now, TraceEvent::ModuleCreated { stack: self.id, module: id, kind });
        self.queue.push_back(Delivery::Start { to: id });
        id
    }

    /// Bind `module` to `service` (paper §2 "Module bindings"). Any
    /// previously bound module is implicitly unbound first. Calls blocked
    /// on the service are released in FIFO order.
    pub fn bind(&mut self, service: &ServiceId, module: ModuleId) {
        if let Some(prev) = self.bindings.insert(service.clone(), module) {
            if prev != module {
                self.trace.push(
                    self.now,
                    TraceEvent::Unbind { stack: self.id, service: service.clone(), module: prev },
                );
            }
        }
        self.trace
            .push(self.now, TraceEvent::Bind { stack: self.id, service: service.clone(), module });
        if let Some(mut blocked) = self.waiting.remove(service) {
            for call in blocked.drain(..) {
                self.trace.push(
                    self.now,
                    TraceEvent::ReleasedCall {
                        stack: self.id,
                        service: service.clone(),
                        op: call.op,
                        from: call.from,
                    },
                );
                self.queue.push_back(Delivery::Call { to: module, call });
            }
        }
    }

    /// Unbind whatever module is bound to `service`. Subsequent calls to
    /// the service block until a new module is bound. Unbinding does *not*
    /// remove the module from the stack (paper §2).
    pub fn unbind(&mut self, service: &ServiceId) {
        if let Some(prev) = self.bindings.remove(service) {
            self.trace.push(
                self.now,
                TraceEvent::Unbind { stack: self.id, service: service.clone(), module: prev },
            );
        }
    }

    /// Destroy a module: unbind it from any service it is bound to, run
    /// its `on_stop`, and remove it. Pending deliveries to it are dropped.
    pub fn destroy_module(&mut self, id: ModuleId) {
        if !self.modules.contains_key(&id) {
            return;
        }
        let bound_services: Vec<ServiceId> =
            self.bindings.iter().filter(|(_, m)| **m == id).map(|(s, _)| s.clone()).collect();
        for svc in bound_services {
            self.unbind(&svc);
        }
        self.queue.push_back(Delivery::Stop { to: id });
    }

    /// Make a service call on behalf of module `from` (used by hosts and
    /// probes to inject work; modules use [`ModuleCtx::call`]).
    pub fn call_as(&mut self, from: ModuleId, service: &ServiceId, op: Op, data: Bytes) {
        self.enqueue_call(Call { service: service.clone(), op, data, from });
    }

    fn enqueue_call(&mut self, call: Call) {
        match self.bindings.get(&call.service) {
            Some(&to) => {
                self.trace.push(
                    self.now,
                    TraceEvent::Call {
                        stack: self.id,
                        service: call.service.clone(),
                        op: call.op,
                        from: call.from,
                        to,
                    },
                );
                self.queue.push_back(Delivery::Call { to, call });
            }
            None => {
                self.trace.push(
                    self.now,
                    TraceEvent::BlockedCall {
                        stack: self.id,
                        service: call.service.clone(),
                        op: call.op,
                        from: call.from,
                    },
                );
                self.waiting.get_mut_or_default(call.service.clone()).push_back(call);
            }
        }
    }

    fn enqueue_response(&mut self, resp: Response) {
        let to: Vec<ModuleId> = self
            .requirers
            .get(&resp.service)
            .map(|v| v.iter().copied().filter(|m| *m != resp.from).collect())
            .unwrap_or_default();
        let live: Vec<ModuleId> = to.into_iter().filter(|m| self.modules.contains_key(m)).collect();
        self.trace.push(
            self.now,
            TraceEvent::Response {
                stack: self.id,
                service: resp.service.clone(),
                op: resp.op,
                from: resp.from,
                fanout: live.len(),
            },
        );
        for m in live {
            self.queue.push_back(Delivery::Response { to: m, resp: resp.clone() });
        }
    }

    /// Inject a datagram arrival from the network. Fans out as a
    /// `net.RECV` response to every module requiring the `net` service.
    pub fn packet_in(&mut self, now: Time, src: StackId, payload: Bytes) {
        if self.crashed {
            return;
        }
        self.now = now;
        // Sample scratch-pool pressure once per arriving packet — off the
        // encode hot path, frequent enough to catch retention spikes.
        self.telemetry.record_scratch_occupancy(self.scratch.mem_bytes() as u64);
        let data = self.scratch.encode(&(src, payload));
        self.enqueue_response(Response {
            service: ServiceId::new(crate::svc::NET),
            op: net_ops::RECV,
            data,
            from: self.net_bridge,
        });
    }

    /// Fire a timer previously armed via [`HostAction::SetTimer`]. Firing
    /// a cancelled or unknown timer is a no-op.
    pub fn timer_fired(&mut self, now: Time, id: TimerId) {
        if self.crashed {
            return;
        }
        self.now = now;
        if let Some((module, tag)) = self.timers.remove(&id) {
            self.queue.push_back(Delivery::Timer { to: module, id, tag });
        }
    }

    /// Crash the stack: it drops all pending work and ignores all further
    /// input. Used for fault-injection experiments.
    pub fn crash(&mut self, now: Time) {
        if self.crashed {
            return;
        }
        self.now = now;
        self.crashed = true;
        self.queue.clear();
        self.waiting.clear();
        self.telemetry.note_crash(now.as_nanos());
        self.trace.push(now, TraceEvent::Crash { stack: self.id });
    }

    /// Dispatch one pending delivery at virtual time `now`. Returns what
    /// was dispatched, or `None` if there was no work (or the stack
    /// crashed).
    pub fn step(&mut self, now: Time) -> Option<StepInfo> {
        if self.crashed {
            return None;
        }
        self.now = now;
        loop {
            let Some(delivery) = self.queue.pop_front() else {
                // The cascade triggered by the last external input has
                // drained; record how many steps it took.
                self.telemetry.cascade_end();
                return None;
            };
            self.telemetry.cascade_step();
            let (to, category) = match &delivery {
                Delivery::Call { to, .. } => (*to, StepCategory::Call),
                Delivery::Response { to, .. } => (*to, StepCategory::Response),
                Delivery::Timer { to, .. } => (*to, StepCategory::Timer),
                Delivery::Start { to } => (*to, StepCategory::Start),
                Delivery::Stop { to } => (*to, StepCategory::Stop),
            };
            // Deliveries to destroyed modules are dropped silently.
            let Some(slot) = self.modules.get_mut(&to) else { continue };
            let mut module = slot.module.take().expect("module re-entrancy");
            let (service, op) = match &delivery {
                Delivery::Call { call, .. } => (Some(call.service.clone()), Some(call.op)),
                Delivery::Response { resp, .. } => (Some(resp.service.clone()), Some(resp.op)),
                _ => (None, None),
            };
            let mut ctx = ModuleCtx { stack: self, me: to, destroyed_self: false };
            match delivery {
                Delivery::Call { call, .. } => module.on_call(&mut ctx, call),
                Delivery::Response { resp, .. } => module.on_response(&mut ctx, resp),
                Delivery::Timer { id, tag, .. } => module.on_timer(&mut ctx, id, tag),
                Delivery::Start { .. } => module.on_start(&mut ctx),
                Delivery::Stop { .. } => {
                    module.on_stop(&mut ctx);
                    ctx.destroyed_self = true;
                }
            }
            let destroyed = ctx.destroyed_self;
            if self.queue.is_empty() {
                // The cascade drained with this step: close it here, so
                // hosts that only schedule steps while work is pending
                // (the sim never calls `step` on an empty queue) still
                // feed the depth histogram.
                self.telemetry.cascade_end();
            }
            if destroyed {
                let kind = module.kind().to_string();
                self.telemetry.note_module_destroyed(self.now.as_nanos());
                self.trace.push(
                    self.now,
                    TraceEvent::ModuleDestroyed { stack: self.id, module: to, kind },
                );
                self.remove_module_records(to);
            } else if let Some(slot) = self.modules.get_mut(&to) {
                slot.module = Some(module);
            }
            return Some(StepInfo { module: to, category, service, op });
        }
    }

    fn remove_module_records(&mut self, id: ModuleId) {
        self.modules.remove(&id);
        let bound: Vec<ServiceId> =
            self.bindings.iter().filter(|(_, m)| **m == id).map(|(s, _)| s.clone()).collect();
        for svc in bound {
            self.unbind(&svc);
        }
        for reqs in self.requirers.values_mut() {
            reqs.retain(|m| *m != id);
        }
        self.timers.retain(|_, (m, _)| *m != id);
    }

    /// Take all host actions produced since the last drain.
    pub fn drain_actions(&mut self) -> Vec<HostAction> {
        std::mem::take(&mut self.actions)
    }

    /// Encode a payload through this stack's [`WireScratch`] (steady-state
    /// allocation-free; bytes identical to [`Encode::to_bytes`]). Hosts
    /// and tests use this to build injected payloads; modules use
    /// [`ModuleCtx::encode`].
    pub fn encode<T: Encode + ?Sized>(&mut self, value: &T) -> Bytes {
        self.scratch.encode(value)
    }

    /// Counters of this stack's scratch pool (see [`ScratchStats`]).
    ///
    /// Under a shard-level pool (see [`Stack::swap_scratch`]) every
    /// encode happens while the shard's pool is loaned in, so the
    /// resident scratch stays empty and this returns zeros — the host
    /// reports the pool's counters instead.
    pub fn wire_stats(&self) -> ScratchStats {
        self.scratch.stats()
    }

    /// Swap this stack's [`WireScratch`] with `other` — the shard-pool
    /// loan handoff. Hosts that own a shard-level pool call this before
    /// driving any encode-capable entry point (packet injection,
    /// dispatch, host closures) and again after, so retained encode
    /// buffers live in one pool per shard instead of one per stack.
    /// The swap moves the retained buffers *and* the counters, so stats
    /// accumulated during the loan stay with the pool; it is a pure
    /// representation change — encoded bytes are identical either way.
    pub fn swap_scratch(&mut self, other: &mut WireScratch) {
        std::mem::swap(&mut self.scratch, other);
    }

    /// Swap this stack's dispatch queue with a shard-owned
    /// [`DispatchBuf`] — the second half of the shard-pool loan. The
    /// burst capacity a dispatch cascade ratchets up (a timer handler
    /// fanning out dozens of calls) then lives in one buffer per shard
    /// instead of one per stack. Deliveries pending on either side are
    /// carried across the swap in FIFO order, so the handoff is
    /// observationally invisible: a delivery enqueued outside a loan
    /// (a packet parked until its step, a due timer) rides along.
    pub fn swap_queue(&mut self, buf: &mut DispatchBuf) {
        std::mem::swap(&mut self.queue, &mut buf.queue);
        // Carry pending deliveries with exact capacity: between loans a
        // stack parks at most a delivery or two (a packet waiting for
        // its step, a fired timer), and `VecDeque`'s minimum growth
        // would pin four 64-byte slots per stack for them.
        self.queue.reserve_exact(buf.queue.len());
        while let Some(d) = buf.queue.pop_front() {
            self.queue.push_back(d);
        }
    }

    /// This stack's observability state (hosts fold these into a
    /// [`dpu_telemetry::TelemetryReport`]).
    pub fn telemetry(&self) -> &StackTelemetry {
        &self.telemetry
    }

    /// Mutable observability state: hosts use this to stamp events the
    /// stack cannot see itself (e.g. end-to-end latencies measured by a
    /// harness).
    pub fn telemetry_mut(&mut self) -> &mut StackTelemetry {
        &mut self.telemetry
    }

    /// Structural estimate of this stack's resident bytes: the struct
    /// itself, each module's concrete state (`size_of_val` through the
    /// trait object), the dispatch/bindings/timers vec-maps (at their
    /// *capacity*, matching what the allocator actually holds), queued
    /// work, the trace log, the scratch pool's retained buffers, and an
    /// amortized share of the host-shared peer table.
    ///
    /// Allocations *inside* module state (boxed fields, collected
    /// payload `Bytes`) are invisible from here, so treat the number as
    /// a floor — `tests/mem_audit.rs` pins how closely it tracks the
    /// allocator-measured `CountingAlloc` figure. The peer table is one
    /// `Arc<[StackId]>` per *host* shared by all `n` stacks; charging
    /// each stack its `1/n` share keeps the audit honest without
    /// re-introducing on paper the O(n²) cost the sharing removed.
    pub fn mem_bytes(&self) -> usize {
        use std::mem::{size_of, size_of_val};
        let mut total = size_of::<Stack>();
        total += self.modules.mem_bytes();
        for slot in self.modules.values() {
            total += slot.kind.capacity();
            total += slot.provides.capacity() * size_of::<ServiceId>();
            total += slot.requires.capacity() * size_of::<ServiceId>();
            if let Some(m) = slot.module.as_deref() {
                total += size_of_val(m);
            }
        }
        total += self.bindings.mem_bytes();
        total += self.requirers.mem_bytes();
        for reqs in self.requirers.values() {
            total += reqs.capacity() * size_of::<ModuleId>();
        }
        total += self.waiting.mem_bytes();
        for queue in self.waiting.values() {
            total += queue.capacity() * size_of::<Call>();
        }
        total += self.queue.capacity() * size_of::<Delivery>();
        total += self.actions.capacity() * size_of::<HostAction>();
        total += self.timers.mem_bytes();
        total += self.defaults.mem_bytes();
        total += self.trace.mem_bytes();
        total += self.scratch.mem_bytes();
        total += self.telemetry.mem_bytes();
        // Amortized peer-table share: the shared allocation holds
        // `peers.len()` ids (plus the Arc refcount header) and is held
        // by `peers.len()` stacks.
        let peer_alloc = self.peers.len() * size_of::<StackId>() + 2 * size_of::<usize>();
        total += peer_alloc.div_ceil(self.peers.len().max(1));
        total
    }

    /// Fold the [`crate::TransportStats`] of every live module that
    /// reports them (a stack can hold several transport incarnations
    /// after protocol switches). Zero everywhere if no module does.
    pub fn transport_stats(&self) -> crate::TransportStats {
        let mut total = crate::TransportStats::default();
        for slot in self.modules.values() {
            if let Some(ts) = slot.module.as_ref().and_then(|m| m.transport_stats()) {
                total.absorb(ts);
            }
        }
        total
    }

    /// Run a closure against the concrete type of a module (downcast).
    /// Returns `None` if the module does not exist or has another type.
    pub fn with_module<M: Module, R>(
        &mut self,
        id: ModuleId,
        f: impl FnOnce(&mut M) -> R,
    ) -> Option<R> {
        let slot = self.modules.get_mut(&id)?;
        let module = slot.module.as_mut()?;
        let any: &mut dyn std::any::Any = &mut **module;
        any.downcast_mut::<M>().map(f)
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic, cheap, good enough for timer jitter.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl fmt::Debug for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stack")
            .field("id", &self.id)
            .field("modules", &self.modules.len())
            .field("bindings", &self.bindings)
            .field("pending", &self.queue.len())
            .field("crashed", &self.crashed)
            .finish()
    }
}

/// The capability handle passed to module handlers: everything a module
/// may do to the world.
pub struct ModuleCtx<'a> {
    stack: &'a mut Stack,
    me: ModuleId,
    destroyed_self: bool,
}

impl ModuleCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.stack.now
    }

    /// The id of the stack this module lives on.
    pub fn stack_id(&self) -> StackId {
        self.stack.id
    }

    /// All stacks of the system.
    pub fn peers(&self) -> &[StackId] {
        &self.stack.peers
    }

    /// Nodes per topology cluster (`None` on flat hosts): stack `i`
    /// belongs to cluster `i / cluster_size`, matching the simulator's
    /// topology rule. Locality-aware protocols (e.g. the hierarchical
    /// atomic broadcast) derive their cluster membership from this.
    pub fn cluster_size(&self) -> Option<u32> {
        self.stack.cluster_size
    }

    /// This module's own id.
    pub fn me(&self) -> ModuleId {
        self.me
    }

    /// Encode a payload through the stack's shared [`WireScratch`]: the
    /// steady-state allocation-free way for a module to build the `data`
    /// for [`ModuleCtx::call`] / [`ModuleCtx::respond`]. Produces bytes
    /// identical to [`Encode::to_bytes`].
    pub fn encode<T: Encode + ?Sized>(&mut self, value: &T) -> Bytes {
        self.stack.scratch.encode(value)
    }

    /// The stack's observability state. Modules record protocol-level
    /// metrics here (switch-phase stamps, resequencing depth, delivery
    /// latency); every method is a no-op when telemetry is off, and
    /// nothing recorded ever feeds back into protocol behaviour.
    pub fn telemetry(&mut self) -> &mut StackTelemetry {
        &mut self.stack.telemetry
    }

    /// Call a service (paper: "service call"). If the service is unbound
    /// the call blocks until a module is bound.
    pub fn call(&mut self, service: &ServiceId, op: Op, data: Bytes) {
        self.stack.enqueue_call(Call { service: service.clone(), op, data, from: self.me });
    }

    /// Respond on a service this module provides (paper: "service
    /// response"). The response is delivered to every local module that
    /// requires the service (excluding this module itself). Note that a
    /// module may respond even after being unbound.
    pub fn respond(&mut self, service: &ServiceId, op: Op, data: Bytes) {
        self.stack.enqueue_response(Response { service: service.clone(), op, data, from: self.me });
    }

    /// Arm a one-shot timer; `tag` is returned to
    /// [`Module::on_timer`] for multiplexing.
    pub fn set_timer(&mut self, delay: Dur, tag: u64) -> TimerId {
        let id = TimerId(self.stack.next_timer);
        self.stack.next_timer += 1;
        self.stack.timers.insert(id, (self.me, tag));
        self.stack.actions.push(HostAction::SetTimer { id, delay });
        id
    }

    /// Disarm a timer. Safe to call on already-fired timers.
    pub fn cancel_timer(&mut self, id: TimerId) {
        if self.stack.timers.remove(&id).is_some() {
            self.stack.actions.push(HostAction::CancelTimer { id });
        }
    }

    /// Bind `module` to `service` (dynamic reconfiguration).
    pub fn bind(&mut self, service: &ServiceId, module: ModuleId) {
        self.stack.bind(service, module);
    }

    /// Unbind the provider of `service` (dynamic reconfiguration).
    pub fn unbind(&mut self, service: &ServiceId) {
        self.stack.unbind(service);
    }

    /// The module currently bound to `service`.
    pub fn bound(&self, service: &ServiceId) -> Option<ModuleId> {
        self.stack.bound(service)
    }

    /// Create and wire in a module per Algorithm 1 lines 22–28 (see
    /// [`Stack::install`]).
    pub fn create_module(&mut self, spec: &ModuleSpec) -> Result<ModuleId, StackError> {
        self.stack.install(spec)
    }

    /// Destroy a module (used by whole-stack switch baselines). A module
    /// may destroy itself; removal then happens after the current handler
    /// returns.
    pub fn destroy_module(&mut self, id: ModuleId) {
        if id == self.me {
            self.destroyed_self = true;
            // Unbind immediately so no further calls are routed to us.
            let bound: Vec<ServiceId> = self
                .stack
                .bindings
                .iter()
                .filter(|(_, m)| **m == id)
                .map(|(s, _)| s.clone())
                .collect();
            for svc in bound {
                self.stack.unbind(&svc);
            }
        } else {
            self.stack.destroy_module(id);
        }
    }

    /// The kind of a live module.
    pub fn module_kind(&self, id: ModuleId) -> Option<&str> {
        self.stack.module_kind(id)
    }

    /// Deterministic per-stack randomness (for timer jitter and the like).
    pub fn random_u64(&mut self) -> u64 {
        self.stack.next_rand()
    }

    /// Low-level escape hatch used by the built-in net bridge: emit a raw
    /// network send. Protocol modules should call the `net` service
    /// instead so the send is visible as a service interaction.
    pub fn net_send(&mut self, dst: StackId, payload: Bytes) {
        self.stack.actions.push(HostAction::NetSend { dst, payload });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Encode;

    /// Test module: provides `echo`; responds on `echo` with the same
    /// payload it was called with.
    struct Echo;

    impl Module for Echo {
        fn kind(&self) -> &str {
            "echo"
        }
        fn provides(&self) -> Vec<ServiceId> {
            vec![ServiceId::new("echo")]
        }
        fn requires(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
            ctx.respond(&call.service, call.op, call.data);
        }
        fn on_response(&mut self, _ctx: &mut ModuleCtx<'_>, _resp: Response) {}
    }

    /// Test module: requires `echo`; records every response payload.
    #[derive(Default)]
    struct Client {
        got: Vec<Bytes>,
    }

    impl Module for Client {
        fn kind(&self) -> &str {
            "client"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new("echo")]
        }
        fn on_call(&mut self, _ctx: &mut ModuleCtx<'_>, _call: Call) {}
        fn on_response(&mut self, _ctx: &mut ModuleCtx<'_>, resp: Response) {
            self.got.push(resp.data);
        }
    }

    fn run_until_idle(stack: &mut Stack) {
        let mut t = stack.now();
        while stack.step(t).is_some() {
            t = Time(t.0 + 1);
        }
    }

    fn new_stack() -> Stack {
        Stack::new(StackConfig::nth(0, 3, 42), FactoryRegistry::new())
    }

    #[test]
    fn call_reaches_bound_provider_and_response_fans_out() {
        let mut stack = new_stack();
        let echo = stack.add_module(Box::new(Echo));
        let client = stack.add_module(Box::new(Client::default()));
        stack.bind(&ServiceId::new("echo"), echo);
        stack.call_as(client, &ServiceId::new("echo"), 7, Bytes::from_static(b"hi"));
        run_until_idle(&mut stack);
        let got = stack.with_module::<Client, _>(client, |c| c.got.clone()).unwrap();
        assert_eq!(got, vec![Bytes::from_static(b"hi")]);
    }

    #[test]
    fn call_to_unbound_service_blocks_until_bind() {
        let mut stack = new_stack();
        let client = stack.add_module(Box::new(Client::default()));
        stack.call_as(client, &ServiceId::new("echo"), 7, Bytes::from_static(b"queued"));
        run_until_idle(&mut stack);
        // Not delivered yet: no provider bound.
        let got = stack.with_module::<Client, _>(client, |c| c.got.clone()).unwrap();
        assert!(got.is_empty());
        // Bind releases the blocked call.
        let echo = stack.add_module(Box::new(Echo));
        stack.bind(&ServiceId::new("echo"), echo);
        run_until_idle(&mut stack);
        let got = stack.with_module::<Client, _>(client, |c| c.got.clone()).unwrap();
        assert_eq!(got, vec![Bytes::from_static(b"queued")]);
        // Trace captured the block + release.
        let evs: Vec<_> = stack.trace().events().iter().map(|(_, e)| e).collect();
        assert!(evs.iter().any(|e| matches!(e, TraceEvent::BlockedCall { .. })));
        assert!(evs.iter().any(|e| matches!(e, TraceEvent::ReleasedCall { .. })));
    }

    #[test]
    fn unbind_then_bind_preserves_fifo_order() {
        let mut stack = new_stack();
        let echo = stack.add_module(Box::new(Echo));
        let client = stack.add_module(Box::new(Client::default()));
        let svc = ServiceId::new("echo");
        stack.bind(&svc, echo);
        stack.unbind(&svc);
        for i in 0..5u8 {
            stack.call_as(client, &svc, 1, Bytes::copy_from_slice(&[i]));
        }
        stack.bind(&svc, echo);
        run_until_idle(&mut stack);
        let got = stack.with_module::<Client, _>(client, |c| c.got.clone()).unwrap();
        let order: Vec<u8> = got.iter().map(|b| b[0]).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn at_most_one_module_bound_per_service() {
        let mut stack = new_stack();
        let a = stack.add_module(Box::new(Echo));
        let b = stack.add_module(Box::new(Echo));
        let svc = ServiceId::new("echo");
        stack.bind(&svc, a);
        assert_eq!(stack.bound(&svc), Some(a));
        stack.bind(&svc, b);
        assert_eq!(stack.bound(&svc), Some(b));
        // The old module is still in the stack (unbinding does not remove).
        assert!(stack.module_kind(a).is_some());
    }

    #[test]
    fn net_bridge_turns_send_calls_into_host_actions() {
        let mut stack = new_stack();
        let client = stack.add_module(Box::new(Client::default()));
        let payload = Bytes::from_static(b"datagram");
        let data = (StackId(2), payload.clone()).to_bytes();
        stack.call_as(client, &ServiceId::new(crate::svc::NET), net_ops::SEND, data);
        run_until_idle(&mut stack);
        let actions = stack.drain_actions();
        assert_eq!(actions, vec![HostAction::NetSend { dst: StackId(2), payload }]);
    }

    #[test]
    fn packet_in_fans_out_to_net_requirers() {
        struct NetUser {
            got: Vec<(StackId, Bytes)>,
        }
        impl Module for NetUser {
            fn kind(&self) -> &str {
                "netuser"
            }
            fn provides(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn requires(&self) -> Vec<ServiceId> {
                vec![ServiceId::new(crate::svc::NET)]
            }
            fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
            fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
                if resp.op == net_ops::RECV {
                    let (src, data): (StackId, Bytes) = resp.decode().unwrap();
                    self.got.push((src, data));
                }
            }
        }
        let mut stack = new_stack();
        let user = stack.add_module(Box::new(NetUser { got: vec![] }));
        stack.packet_in(Time(10), StackId(1), Bytes::from_static(b"pkt"));
        run_until_idle(&mut stack);
        let got = stack.with_module::<NetUser, _>(user, |u| u.got.clone()).unwrap();
        assert_eq!(got, vec![(StackId(1), Bytes::from_static(b"pkt"))]);
    }

    #[test]
    fn timers_fire_with_tag_and_cancel_works() {
        struct TimerUser {
            fired: Vec<u64>,
        }
        impl Module for TimerUser {
            fn kind(&self) -> &str {
                "timeruser"
            }
            fn provides(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn requires(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
                ctx.set_timer(Dur::millis(1), 11);
                let t2 = ctx.set_timer(Dur::millis(2), 22);
                ctx.cancel_timer(t2);
            }
            fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
            fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
            fn on_timer(&mut self, _: &mut ModuleCtx<'_>, _: TimerId, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut stack = new_stack();
        let user = stack.add_module(Box::new(TimerUser { fired: vec![] }));
        run_until_idle(&mut stack);
        let actions = stack.drain_actions();
        let set: Vec<TimerId> = actions
            .iter()
            .filter_map(|a| match a {
                HostAction::SetTimer { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(set.len(), 2);
        // Fire both: the cancelled one must be a no-op.
        stack.timer_fired(Time(100), set[0]);
        stack.timer_fired(Time(100), set[1]);
        run_until_idle(&mut stack);
        let fired = stack.with_module::<TimerUser, _>(user, |u| u.fired.clone()).unwrap();
        assert_eq!(fired, vec![11]);
    }

    #[test]
    fn install_recursively_creates_default_providers() {
        // upper requires "mid"; mid requires "low"; low requires nothing.
        struct Svc {
            name: &'static str,
            kind_name: &'static str,
            deps: Vec<&'static str>,
        }
        impl Module for Svc {
            fn kind(&self) -> &str {
                self.kind_name
            }
            fn provides(&self) -> Vec<ServiceId> {
                vec![ServiceId::new(self.name)]
            }
            fn requires(&self) -> Vec<ServiceId> {
                self.deps.iter().map(ServiceId::new).collect()
            }
            fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
            fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
        }
        let mut reg = FactoryRegistry::new();
        reg.register("upper", |_| {
            Box::new(Svc { name: "up", kind_name: "upper", deps: vec!["mid"] })
        });
        reg.register("middle", |_| {
            Box::new(Svc { name: "mid", kind_name: "middle", deps: vec!["low"] })
        });
        reg.register("lower", |_| Box::new(Svc { name: "low", kind_name: "lower", deps: vec![] }));
        let mut stack = Stack::new(StackConfig::nth(0, 1, 7), reg);
        stack.set_default_provider(ServiceId::new("mid"), ModuleSpec::new("middle"));
        stack.set_default_provider(ServiceId::new("low"), ModuleSpec::new("lower"));
        let up = stack.install(&ModuleSpec::new("upper")).unwrap();
        assert_eq!(stack.bound(&ServiceId::new("up")), Some(up));
        assert!(stack.bound(&ServiceId::new("mid")).is_some());
        assert!(stack.bound(&ServiceId::new("low")).is_some());
        // Installing again binds nothing new (services already bound).
        let up2 = stack.install(&ModuleSpec::new("upper")).unwrap();
        assert_ne!(up, up2);
        assert_eq!(stack.bound(&ServiceId::new("up")), Some(up));
    }

    #[test]
    fn install_fails_without_default_provider() {
        struct Needy;
        impl Module for Needy {
            fn kind(&self) -> &str {
                "needy"
            }
            fn provides(&self) -> Vec<ServiceId> {
                vec![ServiceId::new("n")]
            }
            fn requires(&self) -> Vec<ServiceId> {
                vec![ServiceId::new("missing")]
            }
            fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
            fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
        }
        let mut reg = FactoryRegistry::new();
        reg.register("needy", |_| Box::new(Needy));
        let mut stack = Stack::new(StackConfig::nth(0, 1, 7), reg);
        let err = stack.install(&ModuleSpec::new("needy")).unwrap_err();
        assert_eq!(err, StackError::NoDefaultProvider(ServiceId::new("missing")));
        let err2 = stack.install(&ModuleSpec::new("nope")).unwrap_err();
        assert_eq!(err2, StackError::UnknownKind("nope".into()));
    }

    #[test]
    fn crash_drops_all_work_and_ignores_input() {
        let mut stack = new_stack();
        let echo = stack.add_module(Box::new(Echo));
        let client = stack.add_module(Box::new(Client::default()));
        stack.bind(&ServiceId::new("echo"), echo);
        stack.call_as(client, &ServiceId::new("echo"), 1, Bytes::new());
        stack.crash(Time(5));
        assert!(stack.is_crashed());
        assert!(stack.step(Time(6)).is_none());
        stack.packet_in(Time(7), StackId(1), Bytes::new());
        stack.timer_fired(Time(8), TimerId(1));
        assert!(!stack.has_work());
        assert!(stack.trace().events().iter().any(|(_, e)| matches!(e, TraceEvent::Crash { .. })));
    }

    #[test]
    fn destroy_module_unbinds_and_removes() {
        let mut stack = new_stack();
        let echo = stack.add_module(Box::new(Echo));
        let svc = ServiceId::new("echo");
        stack.bind(&svc, echo);
        stack.destroy_module(echo);
        run_until_idle(&mut stack);
        assert_eq!(stack.bound(&svc), None);
        assert!(stack.module_kind(echo).is_none());
        assert!(stack
            .trace()
            .events()
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::ModuleDestroyed { .. })));
    }

    #[test]
    fn responses_skip_the_responding_module() {
        // A module that both provides and requires the same service must
        // not receive its own responses (prevents trivial loops).
        struct Loopy {
            responses: usize,
        }
        impl Module for Loopy {
            fn kind(&self) -> &str {
                "loopy"
            }
            fn provides(&self) -> Vec<ServiceId> {
                vec![ServiceId::new("loop")]
            }
            fn requires(&self) -> Vec<ServiceId> {
                vec![ServiceId::new("loop")]
            }
            fn on_call(&mut self, ctx: &mut ModuleCtx<'_>, call: Call) {
                ctx.respond(&call.service, call.op, call.data);
            }
            fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {
                self.responses += 1;
            }
        }
        let mut stack = new_stack();
        let loopy = stack.add_module(Box::new(Loopy { responses: 0 }));
        stack.bind(&ServiceId::new("loop"), loopy);
        stack.call_as(loopy, &ServiceId::new("loop"), 1, Bytes::new());
        run_until_idle(&mut stack);
        let n = stack.with_module::<Loopy, _>(loopy, |l| l.responses).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn deterministic_rng_streams_differ_across_stacks() {
        let mut a = Stack::new(StackConfig::nth(0, 2, 42), FactoryRegistry::new());
        let mut b = Stack::new(StackConfig::nth(1, 2, 42), FactoryRegistry::new());
        let ra: Vec<u64> = (0..4).map(|_| a.next_rand()).collect();
        let rb: Vec<u64> = (0..4).map(|_| b.next_rand()).collect();
        assert_ne!(ra, rb);
        // Same config ⇒ same stream.
        let mut a2 = Stack::new(StackConfig::nth(0, 2, 42), FactoryRegistry::new());
        let ra2: Vec<u64> = (0..4).map(|_| a2.next_rand()).collect();
        assert_eq!(ra, ra2);
    }

    #[test]
    fn step_reports_categories() {
        let mut stack = new_stack();
        let echo = stack.add_module(Box::new(Echo));
        let client = stack.add_module(Box::new(Client::default()));
        stack.bind(&ServiceId::new("echo"), echo);
        // Drain the Start deliveries first.
        let s1 = stack.step(Time(1)).unwrap();
        assert_eq!(s1.category, StepCategory::Start); // net bridge
        let s2 = stack.step(Time(2)).unwrap();
        assert_eq!(s2.category, StepCategory::Start);
        let s3 = stack.step(Time(3)).unwrap();
        assert_eq!(s3.category, StepCategory::Start);
        stack.call_as(client, &ServiceId::new("echo"), 9, Bytes::new());
        let s4 = stack.step(Time(4)).unwrap();
        assert_eq!(s4.category, StepCategory::Call);
        assert_eq!(s4.op, Some(9));
        let s5 = stack.step(Time(5)).unwrap();
        assert_eq!(s5.category, StepCategory::Response);
        assert!(stack.step(Time(6)).is_none());
    }
}
