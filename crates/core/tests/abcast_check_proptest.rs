//! Property tests for the atomic broadcast checker itself: generated
//! *correct* executions always pass, and canonical mutations (drop a
//! delivery, duplicate one, swap two) are always caught. A checker that
//! cannot fail is worthless — these tests keep it honest.

use dpu_core::abcast_check::{AbcastChecker, AbcastViolation, MsgId};
use dpu_core::time::Time;
use dpu_core::StackId;
use proptest::prelude::*;

/// A generated "correct" execution: a global order over messages from
/// random senders, delivered in full by every stack.
#[derive(Debug, Clone)]
struct CorrectRun {
    n: u32,
    order: Vec<MsgId>,
}

fn correct_run() -> impl Strategy<Value = CorrectRun> {
    (2u32..6, 1usize..40).prop_flat_map(|(n, len)| {
        proptest::collection::vec(0u32..n, len).prop_map(move |senders| {
            let mut per_sender = vec![0u64; n as usize];
            let order = senders
                .into_iter()
                .map(|s| {
                    let seq = per_sender[s as usize];
                    per_sender[s as usize] += 1;
                    (StackId(s), seq)
                })
                .collect();
            CorrectRun { n, order }
        })
    })
}

fn populate(run: &CorrectRun) -> AbcastChecker {
    let mut c = AbcastChecker::new((0..run.n).map(StackId));
    for (i, &msg) in run.order.iter().enumerate() {
        c.record_broadcast(msg, msg.0, Time(i as u64));
    }
    for stack in 0..run.n {
        for (i, &msg) in run.order.iter().enumerate() {
            c.record_delivery(msg, StackId(stack), Time(100 + i as u64));
        }
    }
    c
}

proptest! {
    #[test]
    fn correct_runs_always_pass(run in correct_run()) {
        let c = populate(&run);
        prop_assert!(c.check().is_empty());
    }

    #[test]
    fn dropping_one_delivery_is_caught(run in correct_run(), which in any::<proptest::sample::Index>()) {
        let mut c = AbcastChecker::new((0..run.n).map(StackId));
        for (i, &msg) in run.order.iter().enumerate() {
            c.record_broadcast(msg, msg.0, Time(i as u64));
        }
        let victim_idx = which.index(run.order.len());
        for stack in 0..run.n {
            for (i, &msg) in run.order.iter().enumerate() {
                // Stack 0 misses one message.
                if stack == 0 && i == victim_idx {
                    continue;
                }
                c.record_delivery(msg, StackId(stack), Time(100 + i as u64));
            }
        }
        let violations = c.check();
        prop_assert!(!violations.is_empty());
        // Specifically: agreement (someone else delivered it) and/or
        // validity (if stack 0 was the sender).
        let flagged = violations.iter().any(|v| matches!(
            v,
            AbcastViolation::Agreement { .. } | AbcastViolation::Validity { .. }
        ));
        prop_assert!(flagged);
    }

    #[test]
    fn duplicating_one_delivery_is_caught(run in correct_run(), which in any::<proptest::sample::Index>()) {
        let mut c = populate(&run);
        let victim = run.order[which.index(run.order.len())];
        c.record_delivery(victim, StackId(0), Time(10_000));
        let violations = c.check();
        let flagged = violations
            .iter()
            .any(|v| matches!(v, AbcastViolation::DuplicateDelivery { .. }));
        prop_assert!(flagged);
    }

    #[test]
    fn swapping_two_deliveries_is_caught(run in correct_run(), which in any::<proptest::sample::Index>()) {
        prop_assume!(run.order.len() >= 2);
        let i = which.index(run.order.len() - 1); // swap order[i] and order[i+1]
        let mut c = AbcastChecker::new((0..run.n).map(StackId));
        for (k, &msg) in run.order.iter().enumerate() {
            c.record_broadcast(msg, msg.0, Time(k as u64));
        }
        for stack in 0..run.n {
            let mut order = run.order.clone();
            if stack == 0 {
                order.swap(i, i + 1);
            }
            for (k, &msg) in order.iter().enumerate() {
                c.record_delivery(msg, StackId(stack), Time(100 + k as u64));
            }
        }
        let violations = c.check();
        let flagged =
            violations.iter().any(|v| matches!(v, AbcastViolation::TotalOrder { .. }));
        prop_assert!(flagged, "swap at {} not caught: {:?}", i, violations);
    }

    #[test]
    fn spurious_delivery_is_caught(run in correct_run(), ghost_seq in 1_000u64..2_000) {
        let mut c = populate(&run);
        c.record_delivery((StackId(0), ghost_seq), StackId(1), Time(9_999));
        let violations = c.check();
        let flagged = violations
            .iter()
            .any(|v| matches!(v, AbcastViolation::SpuriousDelivery { .. }));
        prop_assert!(flagged);
    }

    /// Crashing a stack that delivered only a prefix must NOT create
    /// violations (crashed stacks are exempt from liveness, and a prefix
    /// is order-consistent).
    #[test]
    fn crashed_prefix_is_fine(run in correct_run(), cut in any::<proptest::sample::Index>()) {
        let mut c = AbcastChecker::new((0..run.n).map(StackId));
        for (i, &msg) in run.order.iter().enumerate() {
            c.record_broadcast(msg, msg.0, Time(i as u64));
        }
        let cut = cut.index(run.order.len() + 1);
        for stack in 0..run.n {
            let horizon = if stack == 0 { cut } else { run.order.len() };
            for (i, &msg) in run.order.iter().take(horizon).enumerate() {
                c.record_delivery(msg, StackId(stack), Time(100 + i as u64));
            }
        }
        c.record_crash(StackId(0));
        let violations = c.check();
        // Validity may fire only if stack 0 *sent* undelivered messages —
        // but stack 0 is crashed, so it is exempt. Nothing should fire.
        prop_assert!(violations.is_empty(), "unexpected: {:?}", violations);
    }
}
