//! Property tests for the wire codec: every encodable value round-trips,
//! and the decoder never panics on arbitrary input (it either decodes or
//! returns an error) — the robustness a codec needs when its input comes
//! off a network.

use bytes::Bytes;
use dpu_core::probe::ProbeMsg;
use dpu_core::time::Time;
use dpu_core::wire::{from_bytes, testing::assert_wire_contract, to_bytes, Decode, Encode};
use dpu_core::{ModuleSpec, StackId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Value equality on top of the full wire contract (`encoded_len`
/// exactness, scratch-encode equality, truncated decodes fail, corrupted
/// decodes never panic).
fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
    assert_wire_contract(v);
    let back: T = from_bytes(&to_bytes(v)).expect("roundtrip decode");
    assert_eq!(&back, v);
}

proptest! {
    #[test]
    fn u64_roundtrips(v: u64) {
        roundtrip(&v);
    }

    #[test]
    fn i64_roundtrips(v: i64) {
        roundtrip(&v);
    }

    #[test]
    fn strings_roundtrip(v in ".{0,200}") {
        roundtrip(&v.to_string());
    }

    #[test]
    fn vecs_of_tuples_roundtrip(v in proptest::collection::vec((any::<u32>(), any::<u64>(), any::<bool>()), 0..64)) {
        roundtrip(&v);
    }

    #[test]
    fn nested_options_roundtrip(v in proptest::option::of(proptest::collection::vec(any::<u16>(), 0..16))) {
        roundtrip(&v);
    }

    #[test]
    fn btree_collections_roundtrip(
        set in proptest::collection::btree_set(any::<u64>(), 0..32),
        map in proptest::collection::btree_map(any::<u32>(), ".{0,16}", 0..16),
    ) {
        roundtrip::<BTreeSet<u64>>(&set);
        let map: BTreeMap<u32, String> = map.into_iter().collect();
        roundtrip(&map);
    }

    #[test]
    fn bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..256)) {
        roundtrip(&Bytes::from(v));
    }

    #[test]
    fn module_specs_roundtrip(kind in "[a-z.]{1,24}", params in proptest::collection::vec(any::<u8>(), 0..64)) {
        roundtrip(&ModuleSpec { kind, params: Bytes::from(params) });
    }

    #[test]
    fn probe_msgs_roundtrip(origin: u32, seq: u64, t: u64, pad in proptest::collection::vec(any::<u8>(), 0..128)) {
        roundtrip(&ProbeMsg {
            origin: StackId(origin),
            seq,
            sent_at: Time(t),
            pad: Bytes::from(pad),
        });
    }

    /// Decoding arbitrary garbage must never panic — only return errors
    /// (or succeed, if the bytes happen to form a valid encoding).
    #[test]
    fn decoder_never_panics_on_garbage(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let bytes = Bytes::from(raw);
        let _ = from_bytes::<u64>(&bytes);
        let _ = from_bytes::<String>(&bytes);
        let _ = from_bytes::<Vec<u32>>(&bytes);
        let _ = from_bytes::<Option<Vec<String>>>(&bytes);
        let _ = from_bytes::<ModuleSpec>(&bytes);
        let _ = from_bytes::<ProbeMsg>(&bytes);
        let _ = from_bytes::<(u32, String, String)>(&bytes);
        let _ = from_bytes::<BTreeMap<u64, Bytes>>(&bytes);
    }

    /// Truncating a valid encoding must produce an error, never a panic
    /// and never a silent wrong value of the same length.
    #[test]
    fn truncation_is_detected(v in proptest::collection::vec((any::<u32>(), ".{0,8}"), 1..16), cut in 1usize..8) {
        let v: Vec<(u32, String)> = v.into_iter().collect();
        let full = to_bytes(&v);
        if full.len() > cut {
            let truncated = full.slice(0..full.len() - cut);
            // Either an error, or (rarely) a *valid shorter* encoding —
            // but from_bytes demands full consumption, so any success
            // must consume exactly the truncated buffer; verify it is
            // not equal to the original value in that case.
            if let Ok(back) = from_bytes::<Vec<(u32, String)>>(&truncated) {
                prop_assert_ne!(back, v);
            }
        }
    }
}
