//! Property tests for the composition kernel: under arbitrary
//! interleavings of bind / unbind / call / step, the stack preserves its
//! core invariants —
//!
//! * no call is lost: everything issued is eventually dispatched once a
//!   provider is bound (weak stack-well-formedness, constructively);
//! * per-service FIFO: calls reach the provider in issue order;
//! * no call is dispatched while the service is unbound;
//! * the trace's blocked/released bookkeeping matches reality.

use bytes::Bytes;
use dpu_core::stack::{FactoryRegistry, ModuleCtx, Stack, StackConfig};
use dpu_core::time::Time;
use dpu_core::trace::TraceEvent;
use dpu_core::{Call, Module, ModuleId, Response, ServiceId};
use proptest::prelude::*;

/// Records every call it receives, in order.
struct Recorder {
    svc: ServiceId,
    got: Vec<u64>,
}

impl Module for Recorder {
    fn kind(&self) -> &str {
        "recorder"
    }
    fn provides(&self) -> Vec<ServiceId> {
        vec![self.svc.clone()]
    }
    fn requires(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, call: Call) {
        let v = dpu_core::wire::from_bytes::<u64>(&call.data).unwrap();
        self.got.push(v);
    }
    fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
}

#[derive(Debug, Clone)]
enum OpKind {
    Bind,
    Unbind,
    Call,
    Step,
}

fn op_strategy() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        2 => Just(OpKind::Bind),
        2 => Just(OpKind::Unbind),
        5 => Just(OpKind::Call),
        6 => Just(OpKind::Step),
    ]
}

proptest! {
    #[test]
    fn calls_are_never_lost_and_stay_fifo(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let svc = ServiceId::new("p");
        let mut stack = Stack::new(StackConfig::nth(0, 1, 7), FactoryRegistry::new());
        let provider =
            stack.add_module(Box::new(Recorder { svc: svc.clone(), got: Vec::new() }));
        let caller = ModuleId(0); // synthetic caller id for call_as
        let mut issued: u64 = 0;
        let mut bound = false;
        let mut t = 0u64;
        // The recorder's Start delivery is pending; it gets dispatched by
        // the first Step ops like everything else.
        for op in &ops {
            t += 1;
            match op {
                OpKind::Bind => {
                    stack.bind(&svc, provider);
                    bound = true;
                }
                OpKind::Unbind => {
                    stack.unbind(&svc);
                    bound = false;
                }
                OpKind::Call => {
                    stack.call_as(caller, &svc, 1, dpu_core::wire::to_bytes(&issued));
                    issued += 1;
                }
                OpKind::Step => {
                    let _ = stack.step(Time(t));
                }
            }
            let _ = bound;
        }
        // Finish: bind (releasing anything blocked) and drain.
        stack.bind(&svc, provider);
        let mut guard = 0;
        while stack.step(Time(t + guard)).is_some() {
            guard += 1;
            prop_assert!(guard < 100_000, "dispatch must terminate");
        }
        let got = stack
            .with_module::<Recorder, _>(provider, |r| r.got.clone())
            .expect("provider exists");
        // 1. Nothing lost, nothing duplicated, order preserved.
        prop_assert_eq!(&got, &(0..issued).collect::<Vec<u64>>());
        // 2. Trace bookkeeping: every blocked call was eventually
        //    released (we re-bound at the end).
        let trace = stack.trace();
        let blocked = trace
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::BlockedCall { .. }))
            .count();
        let released = trace
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::ReleasedCall { .. }))
            .count();
        prop_assert_eq!(blocked, released, "all blocked calls must be released");
        // 3. Dispatched + blocked = issued.
        let direct = trace
            .events()
            .iter()
            .filter(|(_, e)| {
                matches!(e, TraceEvent::Call { service, .. } if service.name() == "p")
            })
            .count();
        prop_assert_eq!(direct + blocked, issued as usize);
        // 4. The checker agrees the final trace is weakly well-formed.
        let assessment = dpu_core::props::check_stack_well_formedness(trace);
        prop_assert!(assessment.weak);
        prop_assert_eq!(assessment.strong, blocked == 0);
    }

    /// Rebinding between two providers partitions the call stream
    /// without loss or reorder within each provider's view.
    #[test]
    fn rebinding_between_providers_partitions_the_stream(
        plan in proptest::collection::vec((any::<bool>(), 1usize..6), 1..20)
    ) {
        let svc = ServiceId::new("p");
        let mut stack = Stack::new(StackConfig::nth(0, 1, 3), FactoryRegistry::new());
        let a = stack.add_module(Box::new(Recorder { svc: svc.clone(), got: Vec::new() }));
        let b = stack.add_module(Box::new(Recorder { svc: svc.clone(), got: Vec::new() }));
        let caller = ModuleId(0);
        let mut issued = 0u64;
        let mut t = 0u64;
        for (use_a, count) in &plan {
            stack.bind(&svc, if *use_a { a } else { b });
            for _ in 0..*count {
                stack.call_as(caller, &svc, 1, dpu_core::wire::to_bytes(&issued));
                issued += 1;
            }
            // Drain so the binding at issue time decides the receiver.
            while stack.step(Time(t)).is_some() {
                t += 1;
            }
        }
        let got_a = stack.with_module::<Recorder, _>(a, |r| r.got.clone()).unwrap();
        let got_b = stack.with_module::<Recorder, _>(b, |r| r.got.clone()).unwrap();
        // Each stream is strictly increasing (order preserved) …
        prop_assert!(got_a.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(got_b.windows(2).all(|w| w[0] < w[1]));
        // … and together they form exactly the issued set.
        let mut merged: Vec<u64> = got_a.iter().chain(got_b.iter()).copied().collect();
        merged.sort_unstable();
        prop_assert_eq!(merged, (0..issued).collect::<Vec<u64>>());
        let _ = Bytes::new();
    }
}
