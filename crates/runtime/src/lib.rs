//! # dpu-runtime — a threaded real-time host for DPU stacks
//!
//! Runs the same [`Stack`]s as the deterministic simulator, but for real:
//! one OS thread per stack, crossbeam channels as the (in-process)
//! network, and the wall clock as the time source. This demonstrates that
//! protocol modules are host-agnostic — the examples use it to run live
//! protocol switches outside the simulator.
//!
//! ```no_run
//! use dpu_core::{Stack, StackConfig, FactoryRegistry};
//! use dpu_runtime::{Runtime, RuntimeConfig};
//!
//! let rt = Runtime::spawn(RuntimeConfig::new(3), |sc| {
//!     Stack::new(sc, FactoryRegistry::new())
//! });
//! // interact via rt.with_stack(...), then:
//! rt.shutdown();
//! ```
//!
//! The host contract is identical to the simulator's: it executes
//! [`HostAction`]s (sends, timers) and feeds packets/timer expirations
//! back into the stack. Since real threads race, runs are *not*
//! reproducible — use `dpu-sim` for experiments, this runtime for live
//! demos and soak tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use dpu_core::stack::HostAction;
use dpu_core::time::{Dur, Time};
use dpu_core::{Stack, StackConfig, StackId, TimerId};
use parking_lot::Mutex;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the threaded runtime.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of stacks (threads).
    pub n: u32,
    /// Seed mixed into each stack's deterministic RNG stream.
    pub seed: u64,
    /// Probability of dropping an in-flight packet (fault injection for
    /// soak tests; uses an internal xorshift generator).
    pub loss: f64,
    /// Artificial per-packet delivery delay.
    pub delay: Dur,
    /// Record stack traces.
    pub trace: bool,
}

impl RuntimeConfig {
    /// `n` stacks with no fault injection.
    pub fn new(n: u32) -> RuntimeConfig {
        RuntimeConfig { n, seed: 0, loss: 0.0, delay: Dur::ZERO, trace: false }
    }
}

/// Aggregate counters across all nodes.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Packets handed to the in-process network.
    pub packets_sent: u64,
    /// Packets dropped by the loss model.
    pub packets_dropped: u64,
}

struct Packet {
    src: StackId,
    payload: Bytes,
}

type StackFn = Box<dyn FnOnce(&mut Stack) -> Box<dyn Any + Send> + Send>;

enum Ctl {
    /// Run a closure against the node's stack and send back the result.
    With(StackFn, Sender<Box<dyn Any + Send>>),
    /// Stop the node thread.
    Stop,
}

struct NodeHandle {
    ctl: Sender<Ctl>,
    thread: Option<JoinHandle<Stack>>,
}

/// The threaded runtime. See crate docs.
pub struct Runtime {
    nodes: Vec<NodeHandle>,
    start: Instant,
    stats: Arc<Mutex<RuntimeStats>>,
}

struct NodeCtx {
    stack: Stack,
    packets: Receiver<Packet>,
    ctl: Receiver<Ctl>,
    switchboard: Vec<Sender<Packet>>,
    start: Instant,
    timers: BinaryHeap<Reverse<(Time, TimerId)>>,
    stats: Arc<Mutex<RuntimeStats>>,
    loss: f64,
    delay: Dur,
    rng: u64,
}

impl NodeCtx {
    fn now(&self) -> Time {
        Time(self.start.elapsed().as_nanos() as u64)
    }

    fn next_rand(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn perform(&mut self, actions: Vec<HostAction>) {
        for action in actions {
            match action {
                HostAction::NetSend { dst, payload } => {
                    self.stats.lock().packets_sent += 1;
                    if self.loss > 0.0 && self.next_rand() < self.loss {
                        self.stats.lock().packets_dropped += 1;
                        continue;
                    }
                    if let Some(tx) = self.switchboard.get(dst.idx()) {
                        // Ignore send errors: the destination may have
                        // shut down already.
                        let _ = tx.send(Packet { src: self.stack.id(), payload });
                    }
                }
                HostAction::SetTimer { id, delay } => {
                    self.timers.push(Reverse((self.now() + delay, id)));
                }
                HostAction::CancelTimer { .. } => {
                    // The stack forgets cancelled timers; firing is a
                    // no-op, so lazy cancellation suffices.
                }
            }
        }
    }

    fn run(mut self) -> Stack {
        loop {
            // 1. Drain due timers.
            let now = self.now();
            while let Some(Reverse((at, id))) = self.timers.peek().copied() {
                if at > now {
                    break;
                }
                self.timers.pop();
                self.stack.timer_fired(now, id);
            }
            // 2. Run the stack until idle, executing host actions.
            while self.stack.step(self.now()).is_some() {
                let actions = self.stack.drain_actions();
                if !actions.is_empty() {
                    let delayed = self.delay;
                    if delayed > Dur::ZERO {
                        std::thread::sleep(delayed.to_std());
                    }
                    self.perform(actions);
                }
            }
            // Actions can also be produced without a step (e.g. by a
            // control closure); drain defensively.
            let actions = self.stack.drain_actions();
            if !actions.is_empty() {
                self.perform(actions);
            }
            // 3. Sleep until the next timer or an external event.
            let timeout = match self.timers.peek() {
                Some(Reverse((at, _))) => at.since(self.now()).to_std(),
                None => Duration::from_millis(50),
            };
            crossbeam::channel::select! {
                recv(self.packets) -> pkt => {
                    if let Ok(p) = pkt {
                        let now = self.now();
                        self.stack.packet_in(now, p.src, p.payload);
                    }
                }
                recv(self.ctl) -> msg => {
                    match msg {
                        Ok(Ctl::With(f, reply)) => {
                            let r = f(&mut self.stack);
                            let _ = reply.send(r);
                        }
                        Ok(Ctl::Stop) | Err(_) => return self.stack,
                    }
                }
                default(timeout) => {}
            }
        }
    }
}

impl Runtime {
    /// Spawn `cfg.n` stacks, one thread each. `mk_stack` builds each
    /// stack from its [`StackConfig`].
    pub fn spawn(cfg: RuntimeConfig, mut mk_stack: impl FnMut(StackConfig) -> Stack) -> Runtime {
        let start = Instant::now();
        let stats = Arc::new(Mutex::new(RuntimeStats::default()));
        let mut pkt_txs = Vec::new();
        let mut pkt_rxs = Vec::new();
        for _ in 0..cfg.n {
            let (tx, rx) = unbounded::<Packet>();
            pkt_txs.push(tx);
            pkt_rxs.push(rx);
        }
        let mut nodes = Vec::new();
        for (i, packets) in pkt_rxs.into_iter().enumerate() {
            let sc = StackConfig {
                id: StackId(i as u32),
                peers: (0..cfg.n).map(StackId).collect(),
                seed: cfg.seed,
                trace: cfg.trace,
            };
            let stack = mk_stack(sc);
            let (ctl_tx, ctl_rx) = unbounded::<Ctl>();
            let ctx = NodeCtx {
                stack,
                packets,
                ctl: ctl_rx,
                switchboard: pkt_txs.clone(),
                start,
                timers: BinaryHeap::new(),
                stats: Arc::clone(&stats),
                loss: cfg.loss,
                delay: cfg.delay,
                rng: cfg.seed ^ (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1,
            };
            let thread = std::thread::Builder::new()
                .name(format!("dpu-node-{i}"))
                .spawn(move || ctx.run())
                .expect("spawn node thread");
            nodes.push(NodeHandle { ctl: ctl_tx, thread: Some(thread) });
        }
        Runtime { nodes, start, stats }
    }

    /// Number of stacks.
    pub fn n(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Wall-clock time since the runtime started, as virtual [`Time`].
    pub fn now(&self) -> Time {
        Time(self.start.elapsed().as_nanos() as u64)
    }

    /// Aggregate network counters.
    pub fn stats(&self) -> RuntimeStats {
        let s = self.stats.lock();
        RuntimeStats { packets_sent: s.packets_sent, packets_dropped: s.packets_dropped }
    }

    /// Run a closure against the stack of node `id` (on its own thread)
    /// and return the result. Blocks until the node services the request.
    pub fn with_stack<R: Send + 'static>(
        &self,
        id: StackId,
        f: impl FnOnce(&mut Stack) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = bounded(1);
        let wrapped: StackFn = Box::new(move |s| Box::new(f(s)) as Box<dyn Any + Send>);
        self.nodes[id.idx()].ctl.send(Ctl::With(wrapped, tx)).expect("node thread alive");
        let boxed = rx.recv().expect("node replies");
        *boxed.downcast::<R>().expect("result type")
    }

    /// Stop all node threads and return the final stacks (for post-hoc
    /// trace inspection).
    pub fn shutdown(mut self) -> Vec<Stack> {
        for node in &self.nodes {
            let _ = node.ctl.send(Ctl::Stop);
        }
        self.nodes
            .iter_mut()
            .map(|n| n.thread.take().expect("not yet joined").join().expect("node thread"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::stack::{net_ops, FactoryRegistry, ModuleCtx};
    use dpu_core::wire::Encode;
    use dpu_core::{Call, Module, Response, ServiceId};

    /// Counts datagrams; replies "pong" to any "ping".
    struct PingPong {
        got: Vec<(StackId, Bytes)>,
    }

    impl Module for PingPong {
        fn kind(&self) -> &str {
            "pingpong"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(dpu_core::svc::NET)]
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op != net_ops::RECV {
                return;
            }
            let (src, data): (StackId, Bytes) = resp.decode().unwrap();
            if data.as_ref() == b"ping" {
                let reply = (src, Bytes::from_static(b"pong")).to_bytes();
                ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, reply);
            }
            self.got.push((src, data));
        }
    }

    const PP: dpu_core::ModuleId = dpu_core::ModuleId(2);

    fn mk(sc: StackConfig) -> Stack {
        let mut s = Stack::new(sc, FactoryRegistry::new());
        s.add_module(Box::new(PingPong { got: vec![] }));
        s
    }

    #[test]
    fn ping_pong_roundtrip_between_threads() {
        let rt = Runtime::spawn(RuntimeConfig::new(2), mk);
        let data = (StackId(1), Bytes::from_static(b"ping")).to_bytes();
        rt.with_stack(StackId(0), move |s| {
            s.call_as(PP, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
        // Wait for the exchange with a bounded poll.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let got = rt.with_stack(StackId(0), |s| {
                s.with_module::<PingPong, _>(PP, |p| p.got.clone()).unwrap()
            });
            if got.iter().any(|(src, d)| *src == StackId(1) && d.as_ref() == b"pong") {
                break;
            }
            assert!(Instant::now() < deadline, "no pong within 5s");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(rt.stats().packets_sent >= 2);
        rt.shutdown();
    }

    #[test]
    fn timers_fire_in_real_time() {
        struct TimerBeat {
            beats: u32,
        }
        impl Module for TimerBeat {
            fn kind(&self) -> &str {
                "beat"
            }
            fn provides(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn requires(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
                ctx.set_timer(Dur::millis(10), 1);
            }
            fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
            fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
            fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _: TimerId, _: u64) {
                self.beats += 1;
                if self.beats < 5 {
                    ctx.set_timer(Dur::millis(10), 1);
                }
            }
        }
        let rt = Runtime::spawn(RuntimeConfig::new(1), |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            s.add_module(Box::new(TimerBeat { beats: 0 }));
            s
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let beats = rt.with_stack(StackId(0), |s| {
                s.with_module::<TimerBeat, _>(PP, |b| b.beats).unwrap()
            });
            if beats >= 5 {
                break;
            }
            assert!(Instant::now() < deadline, "timers too slow: {beats}/5");
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.shutdown();
    }

    #[test]
    fn loss_model_drops_packets() {
        let mut cfg = RuntimeConfig::new(2);
        cfg.loss = 1.0;
        let rt = Runtime::spawn(cfg, mk);
        let data = (StackId(1), Bytes::from_static(b"ping")).to_bytes();
        rt.with_stack(StackId(0), move |s| {
            s.call_as(PP, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
        std::thread::sleep(Duration::from_millis(100));
        let got = rt
            .with_stack(StackId(1), |s| s.with_module::<PingPong, _>(PP, |p| p.got.len()).unwrap());
        assert_eq!(got, 0);
        let stats = rt.stats();
        assert_eq!(stats.packets_dropped, stats.packets_sent);
        rt.shutdown();
    }

    #[test]
    fn shutdown_returns_final_stacks() {
        let rt = Runtime::spawn(RuntimeConfig::new(3), mk);
        let stacks = rt.shutdown();
        assert_eq!(stacks.len(), 3);
        for (i, s) in stacks.iter().enumerate() {
            assert_eq!(s.id(), StackId(i as u32));
        }
    }
}
