//! # dpu-runtime — a sharded event-loop host for DPU stacks
//!
//! Runs the same [`Stack`]s as the deterministic simulator, but for real:
//! a small, fixed pool of *shard* threads multiplexes any number of
//! [`StackDriver`]s under the wall clock, with crossbeam channels as the
//! (in-process) network. This is the scaling host of the workspace —
//! thousands of stacks per process on a handful of threads — and it
//! demonstrates that protocol modules are host-agnostic: every stack is
//! driven exclusively through the unified host API of
//! [`dpu_core::host`].
//!
//! ```no_run
//! use dpu_core::{Stack, StackConfig, FactoryRegistry};
//! use dpu_runtime::{Runtime, RuntimeConfig};
//!
//! let rt = Runtime::spawn(RuntimeConfig::new(256).with_shards(4), |sc| {
//!     Stack::new(sc, FactoryRegistry::new())
//! });
//! // interact via rt.with_stack(...), then:
//! rt.shutdown();
//! ```
//!
//! # The sharding model
//!
//! The `n` stacks are assigned round-robin to [`RuntimeConfig::shards`]
//! worker threads. Each shard owns:
//!
//! * its stacks' [`StackDriver`]s — stack, timer queue and drive loop;
//! * one **mailbox** (an unbounded crossbeam channel) carrying packet
//!   deliveries, control requests and shutdown;
//! * one **timer wheel** (a min-heap of `(deadline, event)` pairs)
//!   holding the next poll deadline of each driver plus packets whose
//!   modeled delivery time has not arrived yet.
//!
//! The shard loop is: fire due wheel entries → poll the touched drivers
//! (the canonical drain-timers/step/execute loop lives in
//! [`StackDriver::poll`]) → block on the mailbox until the earliest
//! wheel deadline. Network sends are executed *by the sending shard*
//! through an [`ActionSink`] that applies the loss model and routes the
//! packet to the destination's shard, stamped with a delivery time of
//! `now + delay` — per-packet latency costs no thread any sleep, so one
//! slow link never stalls the other stacks of a shard.
//!
//! Control requests ([`Runtime::with_stack`]) route to the owning shard
//! and run between polls; [`Runtime::stats`] and [`Runtime::shutdown`]
//! keep their pre-sharding signatures.
//!
//! Since real threads race, runs are *not* reproducible — use `dpu-sim`
//! for experiments, this runtime for live demos and soak tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use dpu_core::host::{ActionSink, HostEvent, StackDriver, Wakeup};
use dpu_core::time::{Dur, Time};
use dpu_core::{Stack, StackConfig, StackId, TelemetryConfig};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of the sharded runtime.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of stacks.
    pub n: u32,
    /// Number of shard (worker) threads multiplexing the stacks.
    /// `0` (the default) picks `min(n, available_parallelism)`; an
    /// explicit count is capped to `n` (a shard with no stacks would
    /// just idle).
    pub shards: u32,
    /// Seed mixed into each stack's deterministic RNG stream.
    pub seed: u64,
    /// Probability of dropping an in-flight packet (fault injection for
    /// soak tests; uses an internal xorshift generator).
    pub loss: f64,
    /// Artificial per-packet delivery delay. Applied as a delivery
    /// *timestamp* on the receiving shard's timer wheel — no thread
    /// sleeps, so delay on one packet never stalls other stacks.
    pub delay: Dur,
    /// Record stack traces.
    pub trace: bool,
    /// Per-stack observability (histograms, switch timeline, flight
    /// recorder). On by default like under the simulator.
    pub telemetry: TelemetryConfig,
}

impl RuntimeConfig {
    /// `n` stacks with no fault injection, shard count picked
    /// automatically.
    pub fn new(n: u32) -> RuntimeConfig {
        RuntimeConfig {
            n,
            shards: 0,
            seed: 0,
            loss: 0.0,
            delay: Dur::ZERO,
            trace: false,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Set the shard-thread count (builder style). Capped to `n` at
    /// spawn time; see [`RuntimeConfig::shards`].
    pub fn with_shards(mut self, shards: u32) -> RuntimeConfig {
        self.shards = shards;
        self
    }

    fn effective_shards(&self) -> u32 {
        let auto = || {
            let cores =
                std::thread::available_parallelism().map(|p| p.get() as u32).unwrap_or(4).max(1);
            self.n.clamp(1, cores)
        };
        match self.shards {
            0 => auto(),
            s => s.min(self.n.max(1)),
        }
    }
}

/// Aggregate counters across all shards.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Packets handed to the in-process network.
    pub packets_sent: u64,
    /// Packets dropped by the loss model.
    pub packets_dropped: u64,
}

#[derive(Default)]
struct StatsInner {
    packets_sent: AtomicU64,
    packets_dropped: AtomicU64,
}

type StackFn = Box<dyn FnOnce(&mut Stack) -> Box<dyn Any + Send> + Send>;

enum ShardMsg {
    /// Deliver `payload` from `src` to `dst` once the wall clock reaches
    /// `at` (the sender already applied the loss model).
    Deliver { dst: StackId, src: StackId, payload: Bytes, at: Time },
    /// Run a closure against `dst`'s stack and send back the result.
    Ctl { dst: StackId, f: StackFn, reply: Sender<Box<dyn Any + Send>> },
    /// Report the shard-level scratch pool's counters (every encode on
    /// this shard runs under the pool loan, so these are the shard's
    /// wire stats).
    PoolStats { reply: Sender<dpu_core::wire::ScratchStats> },
    /// Stop the shard and return its stacks.
    Stop,
}

/// The sending half of the in-process network: executes a driver's
/// `NetSend`s by routing each packet to the destination stack's shard,
/// stamped with its delivery time.
struct Router {
    shard_of: Arc<Vec<u32>>,
    mailboxes: Vec<Sender<ShardMsg>>,
    stats: Arc<StatsInner>,
    loss: f64,
    delay: Dur,
    rng: u64,
}

impl Router {
    fn next_rand(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl ActionSink for Router {
    fn net_send(&mut self, at: Time, src: StackId, dst: StackId, payload: Bytes) {
        // SeqCst pairs with the dropped-before-sent load order in
        // `Runtime::stats` to keep its snapshot monotonic.
        self.stats.packets_sent.fetch_add(1, Ordering::SeqCst);
        if self.loss > 0.0 && self.next_rand() < self.loss {
            self.stats.packets_dropped.fetch_add(1, Ordering::SeqCst);
            return;
        }
        let Some(&shard) = self.shard_of.get(dst.idx()) else { return };
        // Ignore send errors: the destination shard may have shut down.
        let _ = self.mailboxes[shard as usize].send(ShardMsg::Deliver {
            dst,
            src,
            payload,
            at: at + self.delay,
        });
    }
}

/// An entry on a shard's timer wheel. Ordered by `(time, seq)` for a
/// stable min-heap with FIFO tie-breaking (like the simulator's heap).
struct WheelEntry(Reverse<(Time, u64)>, WheelItem);

enum WheelItem {
    /// Poll local driver `usize`; stale if its stamp moved (see
    /// [`Shard::next_wake`]).
    Wake(usize),
    /// A packet whose modeled delivery time had not arrived when it
    /// reached the shard.
    Deliver { local: usize, src: StackId, payload: Bytes },
}

impl PartialEq for WheelEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for WheelEntry {}
impl PartialOrd for WheelEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WheelEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// One worker thread: a set of drivers, a mailbox, a timer wheel.
struct Shard {
    ids: Vec<StackId>,
    drivers: Vec<StackDriver>,
    /// Scheduled wheel wake time per local driver. A wheel `Wake` whose
    /// time differs from the stamp is stale and is skipped; the stamp
    /// moves whenever a nearer deadline is scheduled, so cancelled and
    /// superseded wakeups purge themselves on pop.
    next_wake: Vec<Option<Time>>,
    wheel: BinaryHeap<WheelEntry>,
    wheel_seq: u64,
    mailbox: Receiver<ShardMsg>,
    router: Router,
    start: Instant,
    /// The shard-level encode-buffer pool, loaned to whichever driver
    /// is being polled (see [`dpu_core::stack::Stack::swap_scratch`]):
    /// retained encode memory scales with shard threads, not stacks.
    pool: dpu_core::wire::WireScratch,
    /// The shard-level dispatch-queue buffer, loaned alongside the
    /// encode pool: cascade burst capacity scales with shards too.
    qpool: dpu_core::stack::DispatchBuf,
}

/// Upper bound on mailbox messages handled between wheel checks, so a
/// flood of packets cannot starve due timers or delivery-timestamp
/// ordering.
const DRAIN_BATCH: usize = 128;

impl Shard {
    fn now(&self) -> Time {
        Time(self.start.elapsed().as_nanos() as u64)
    }

    fn run(mut self) -> Vec<(StackId, Stack)> {
        // Service the stacks' start-up work (on_start handlers).
        for i in 0..self.drivers.len() {
            self.poll_driver(i);
        }
        loop {
            let now = self.now();
            self.fire_wheel(now);
            // Park on the mailbox until the earliest wheel deadline —
            // or indefinitely when the wheel is empty, so an idle shard
            // burns no CPU. Every other wakeup arrives as a mailbox
            // message, and shutdown never relies on a timeout:
            // [`Runtime::shutdown`] and [`Runtime`]'s `Drop` both post
            // an explicit `Stop` to every mailbox.
            let msg = match self.wheel.peek() {
                Some(WheelEntry(Reverse((at, _)), _)) => {
                    match self.mailbox.recv_timeout(at.since(self.now()).to_std()) {
                        Ok(msg) => msg,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match self.mailbox.recv() {
                    Ok(msg) => msg,
                    Err(_) => break,
                },
            };
            if !self.handle(msg) {
                break;
            }
            for _ in 0..DRAIN_BATCH {
                match self.mailbox.try_recv() {
                    Ok(msg) => {
                        if !self.handle(msg) {
                            return self.into_stacks();
                        }
                    }
                    Err(_) => break,
                }
            }
        }
        self.into_stacks()
    }

    fn into_stacks(self) -> Vec<(StackId, Stack)> {
        self.ids.into_iter().zip(self.drivers.into_iter().map(StackDriver::into_stack)).collect()
    }

    /// Returns `false` on `Stop`.
    fn handle(&mut self, msg: ShardMsg) -> bool {
        match msg {
            ShardMsg::Deliver { dst, src, payload, at } => {
                // Always through the wheel, even when already due: the
                // wheel pops by (stamp, arrival seq), so a due packet
                // cannot overtake an earlier-stamped one still parked
                // there (per-sender FIFO survives `delay`).
                let local = self.local_idx(dst);
                self.push_wheel(at, WheelItem::Deliver { local, src, payload });
            }
            ShardMsg::Ctl { dst, f, reply } => {
                let local = self.local_idx(dst);
                // Loan the pool for the closure (it may encode), and
                // leave it loaned through the follow-up poll.
                self.drivers[local].swap_scratch(&mut self.pool);
                self.drivers[local].swap_queue(&mut self.qpool);
                let r = f(self.drivers[local].stack_mut());
                self.drivers[local].swap_scratch(&mut self.pool);
                self.drivers[local].swap_queue(&mut self.qpool);
                let _ = reply.send(r);
                // The closure may have queued work or produced actions.
                self.poll_driver(local);
            }
            ShardMsg::PoolStats { reply } => {
                let _ = reply.send(self.pool.stats());
            }
            ShardMsg::Stop => return false,
        }
        true
    }

    fn local_idx(&self, id: StackId) -> usize {
        // Round-robin assignment: shard s owns stacks s, s+k, s+2k, ...
        // Must stay in lockstep with the `shard_of` map built in
        // `Runtime::spawn`; the assert ties the two encodings together.
        let local = id.idx() / self.router.mailboxes.len();
        debug_assert_eq!(self.ids[local], id, "stack-to-shard assignment diverged");
        local
    }

    fn fire_wheel(&mut self, now: Time) {
        while let Some(WheelEntry(Reverse((at, _)), _)) = self.wheel.peek() {
            if *at > now {
                break;
            }
            let WheelEntry(Reverse((at, _)), item) = self.wheel.pop().expect("peeked");
            match item {
                WheelItem::Wake(local) => {
                    if self.next_wake[local] != Some(at) {
                        continue; // stale: superseded by a nearer wake
                    }
                    self.next_wake[local] = None;
                    self.poll_driver(local);
                }
                WheelItem::Deliver { local, src, payload } => {
                    self.drivers[local].inject(HostEvent::Packet { src, payload });
                    self.poll_driver(local);
                }
            }
        }
    }

    /// Run one driver's canonical drive loop and keep a wheel wake
    /// scheduled at its next deadline.
    fn poll_driver(&mut self, local: usize) {
        let now = self.now();
        // The canonical drive loop dispatches module handlers, which
        // encode — run it under the shard-pool loan.
        self.drivers[local].swap_scratch(&mut self.pool);
        self.drivers[local].swap_queue(&mut self.qpool);
        let wakeup = self.drivers[local].poll(now, &mut self.router);
        self.drivers[local].swap_scratch(&mut self.pool);
        self.drivers[local].swap_queue(&mut self.qpool);
        match wakeup {
            Wakeup::Idle => {}
            Wakeup::At(at) => {
                if self.next_wake[local].is_none_or(|w| at < w) {
                    self.next_wake[local] = Some(at);
                    self.push_wheel(at, WheelItem::Wake(local));
                }
            }
        }
    }

    fn push_wheel(&mut self, at: Time, item: WheelItem) {
        let seq = self.wheel_seq;
        self.wheel_seq += 1;
        self.wheel.push(WheelEntry(Reverse((at, seq)), item));
    }
}

/// The sharded runtime. See crate docs.
pub struct Runtime {
    mailboxes: Vec<Sender<ShardMsg>>,
    shard_of: Arc<Vec<u32>>,
    threads: Vec<JoinHandle<Vec<(StackId, Stack)>>>,
    start: Instant,
    stats: Arc<StatsInner>,
}

impl Runtime {
    /// Spawn `cfg.n` stacks multiplexed over `cfg.shards` worker
    /// threads. `mk_stack` builds each stack from its [`StackConfig`]
    /// (called on the spawning thread, in stack-id order).
    pub fn spawn(cfg: RuntimeConfig, mut mk_stack: impl FnMut(StackConfig) -> Stack) -> Runtime {
        let start = Instant::now();
        let stats = Arc::new(StatsInner::default());
        let shards = cfg.effective_shards() as usize;
        let shard_of: Arc<Vec<u32>> =
            Arc::new((0..cfg.n).map(|i| i % shards as u32).collect::<Vec<_>>());
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..shards).map(|_| unbounded::<ShardMsg>()).unzip();
        let mut by_shard: Vec<(Vec<StackId>, Vec<StackDriver>)> =
            (0..shards).map(|_| (Vec::new(), Vec::new())).collect();
        let peer_table = StackConfig::peer_table(cfg.n);
        for i in 0..cfg.n {
            let sc = StackConfig {
                id: StackId(i),
                peers: Arc::clone(&peer_table),
                seed: cfg.seed,
                trace: cfg.trace,
                // The live runtime has no topology model: one flat
                // cluster, which locality-aware protocols degenerate to.
                cluster_size: None,
                telemetry: cfg.telemetry,
            };
            let (ids, drivers) = &mut by_shard[(i as usize) % shards];
            ids.push(StackId(i));
            drivers.push(StackDriver::new(mk_stack(sc)));
        }
        let threads = by_shard
            .into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(s, ((ids, drivers), mailbox))| {
                let n_local = drivers.len();
                let shard = Shard {
                    ids,
                    drivers,
                    next_wake: vec![None; n_local],
                    wheel: BinaryHeap::new(),
                    wheel_seq: 0,
                    mailbox,
                    router: Router {
                        shard_of: Arc::clone(&shard_of),
                        mailboxes: txs.clone(),
                        stats: Arc::clone(&stats),
                        loss: cfg.loss,
                        delay: cfg.delay,
                        rng: cfg.seed ^ (s as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1,
                    },
                    start,
                    pool: dpu_core::wire::WireScratch::shard_pool(),
                    qpool: dpu_core::stack::DispatchBuf::new(),
                };
                std::thread::Builder::new()
                    .name(format!("dpu-shard-{s}"))
                    .spawn(move || shard.run())
                    .expect("spawn shard thread")
            })
            .collect();
        Runtime { mailboxes: txs, shard_of, threads, start, stats }
    }

    /// Number of stacks.
    pub fn n(&self) -> u32 {
        self.shard_of.len() as u32
    }

    /// Number of shard threads.
    pub fn shards(&self) -> u32 {
        self.mailboxes.len() as u32
    }

    /// Wall-clock time since the runtime started, as virtual [`Time`].
    pub fn now(&self) -> Time {
        Time(self.start.elapsed().as_nanos() as u64)
    }

    /// Aggregate network counters. The snapshot is monotonic
    /// (`packets_dropped <= packets_sent` always holds): `dropped` is
    /// loaded first and every drop increment is sequenced after its
    /// send increment, all SeqCst.
    pub fn stats(&self) -> RuntimeStats {
        let packets_dropped = self.stats.packets_dropped.load(Ordering::SeqCst);
        let packets_sent = self.stats.packets_sent.load(Ordering::SeqCst);
        RuntimeStats { packets_sent, packets_dropped }
    }

    /// Aggregate [`dpu_core::wire::ScratchStats`] over the runtime: the
    /// shard-level pools (where every encode lands under the loan
    /// discipline — one request per *shard*, not per stack) plus each
    /// stack's resident scratch as a residual (zero in normal operation;
    /// kept so any encode outside a loan still counts). The steady-state
    /// allocation oracle of the live message path.
    ///
    /// Like [`Runtime::with_stack`], must be called from outside the
    /// shard threads.
    pub fn wire_stats(&self) -> dpu_core::wire::ScratchStats {
        let mut total = self.pool_stats();
        for i in 0..self.n() {
            total.absorb(self.with_stack(StackId(i), |s| s.wire_stats()));
        }
        total
    }

    /// Sum of the shard-level scratch pools' counters (one control
    /// round-trip per shard).
    fn pool_stats(&self) -> dpu_core::wire::ScratchStats {
        let mut total = dpu_core::wire::ScratchStats::default();
        for mb in &self.mailboxes {
            let (tx, rx) = bounded(1);
            mb.send(ShardMsg::PoolStats { reply: tx }).expect("shard thread alive");
            total.absorb(rx.recv().expect("shard replies"));
        }
        total
    }

    /// Aggregate [`dpu_core::TransportStats`] over every stack — the
    /// health of the reliable transport under the live loss model
    /// (rp2p retransmissions, frames given up after the retransmit
    /// cap, current unacked backlog).
    ///
    /// Like [`Runtime::with_stack`], must be called from outside the
    /// shard threads.
    pub fn transport_stats(&self) -> dpu_core::TransportStats {
        let mut total = dpu_core::TransportStats::default();
        for i in 0..self.n() {
            total.absorb(self.with_stack(StackId(i), |s| s.transport_stats()));
        }
        total
    }

    /// Unified telemetry snapshot across every stack: delivery-latency /
    /// cascade-depth / scratch-occupancy / reseq-depth histograms, the
    /// switch-phase timeline, and wire + transport counter families.
    /// Shape-identical to `Sim::telemetry_report` and
    /// `Reactor::telemetry_report`.
    ///
    /// Like [`Runtime::with_stack`], must be called from outside the
    /// shard threads.
    pub fn telemetry_report(&self) -> dpu_core::telemetry::TelemetryReport {
        let mut agg = dpu_core::telemetry::TelemetryAggregate::new();
        let mut wire = dpu_core::wire::ScratchStats::default();
        let mut transport = dpu_core::TransportStats::default();
        for i in 0..self.n() {
            let (part, w, t) = self.with_stack(StackId(i), |s| {
                let mut part = dpu_core::telemetry::TelemetryAggregate::new();
                part.absorb(s.telemetry());
                (part, s.wire_stats(), s.transport_stats())
            });
            agg.merge(&part);
            wire.absorb(w);
            transport.absorb(t);
        }
        wire.absorb(self.pool_stats());
        let mut report = agg.report("runtime", self.n(), self.now().as_nanos());
        report.wire = dpu_core::telemetry::WireCounters {
            emitted: wire.emitted,
            reclaimed: wire.reclaimed,
            allocations: wire.allocations,
        };
        report.transport = dpu_core::telemetry::TransportCounters {
            retransmissions: transport.retransmissions,
            exhausted: transport.exhausted,
            unacked: transport.unacked,
        };
        report
    }

    /// Dump every stack's flight recorder (most recent events, oldest
    /// first, with drop counts) — the postmortem a failing soak prints.
    ///
    /// Like [`Runtime::with_stack`], must be called from outside the
    /// shard threads.
    pub fn dump_flight_recorders(&self) -> String {
        let mut out = String::new();
        for i in 0..self.n() {
            let chunk = self.with_stack(StackId(i), move |s| {
                let mut buf = String::new();
                s.telemetry().dump_flight(&format!("stack {}", s.id().0), &mut buf);
                buf
            });
            out.push_str(&chunk);
        }
        out
    }

    /// Run a closure against the stack of node `id` (on its owning
    /// shard) and return the result. Blocks until the shard services the
    /// request.
    ///
    /// Must be called from *outside* the runtime's shard threads. A call
    /// issued from code already running on a shard (e.g. inside another
    /// `with_stack` closure) targeting a stack of that same shard would
    /// wait on the very thread that is executing it — a self-deadlock.
    pub fn with_stack<R: Send + 'static>(
        &self,
        id: StackId,
        f: impl FnOnce(&mut Stack) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = bounded(1);
        let wrapped: StackFn = Box::new(move |s| Box::new(f(s)) as Box<dyn Any + Send>);
        let shard = self.shard_of[id.idx()] as usize;
        self.mailboxes[shard]
            .send(ShardMsg::Ctl { dst: id, f: wrapped, reply: tx })
            .expect("shard thread alive");
        let boxed = rx.recv().expect("shard replies");
        *boxed.downcast::<R>().expect("result type")
    }

    /// Stop all shard threads and return the final stacks in id order
    /// (for post-hoc trace inspection).
    pub fn shutdown(mut self) -> Vec<Stack> {
        for mb in &self.mailboxes {
            let _ = mb.send(ShardMsg::Stop);
        }
        let mut stacks: Vec<(StackId, Stack)> = std::mem::take(&mut self.threads)
            .into_iter()
            .flat_map(|t| t.join().expect("shard thread"))
            .collect();
        stacks.sort_by_key(|(id, _)| *id);
        stacks.into_iter().map(|(_, s)| s).collect()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Every shard's Router holds senders to every mailbox, so shards
        // never observe disconnection on their own; stop them explicitly
        // so dropping a Runtime without `shutdown()` (e.g. on a test
        // panic) does not leak the shard threads. After `shutdown()` the
        // receivers are gone and these sends are ignored errors.
        for mb in &self.mailboxes {
            let _ = mb.send(ShardMsg::Stop);
        }
        for t in std::mem::take(&mut self.threads) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_core::stack::{net_ops, FactoryRegistry, ModuleCtx};
    use dpu_core::wire::Encode;
    use dpu_core::{Call, Module, Response, ServiceId, TimerId};
    use std::time::Duration;

    /// Counts datagrams; replies "pong" to any "ping".
    struct PingPong {
        got: Vec<(StackId, Bytes)>,
    }

    impl Module for PingPong {
        fn kind(&self) -> &str {
            "pingpong"
        }
        fn provides(&self) -> Vec<ServiceId> {
            Vec::new()
        }
        fn requires(&self) -> Vec<ServiceId> {
            vec![ServiceId::new(dpu_core::svc::NET)]
        }
        fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
        fn on_response(&mut self, ctx: &mut ModuleCtx<'_>, resp: Response) {
            if resp.op != net_ops::RECV {
                return;
            }
            let (src, data): (StackId, Bytes) = resp.decode().unwrap();
            if data.as_ref() == b"ping" {
                let reply = (src, Bytes::from_static(b"pong")).to_bytes();
                ctx.call(&ServiceId::new(dpu_core::svc::NET), net_ops::SEND, reply);
            }
            self.got.push((src, data));
        }
    }

    /// In every test stack here: net bridge is module 1, the test module
    /// is module 2.
    const PP: dpu_core::ModuleId = dpu_core::ModuleId(2);
    const BEAT: dpu_core::ModuleId = dpu_core::ModuleId(2);

    fn mk(sc: StackConfig) -> Stack {
        let mut s = Stack::new(sc, FactoryRegistry::new());
        s.add_module(Box::new(PingPong { got: vec![] }));
        s
    }

    #[test]
    fn ping_pong_roundtrip_between_shards() {
        let rt = Runtime::spawn(RuntimeConfig::new(2).with_shards(2), mk);
        assert_eq!(rt.shards(), 2);
        let data = (StackId(1), Bytes::from_static(b"ping")).to_bytes();
        rt.with_stack(StackId(0), move |s| {
            s.call_as(PP, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
        // Wait for the exchange with a bounded poll.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let got = rt.with_stack(StackId(0), |s| {
                s.with_module::<PingPong, _>(PP, |p| p.got.clone()).unwrap()
            });
            if got.iter().any(|(src, d)| *src == StackId(1) && d.as_ref() == b"pong") {
                break;
            }
            assert!(Instant::now() < deadline, "no pong within 5s");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(rt.stats().packets_sent >= 2);
        rt.shutdown();
    }

    #[test]
    fn many_stacks_multiplex_on_two_shards() {
        let n = 32u32;
        let rt = Runtime::spawn(RuntimeConfig::new(n).with_shards(2), mk);
        assert_eq!(rt.shards(), 2);
        // Every stack pings its successor; every stack must see a pong.
        for i in 0..n {
            let data = (StackId((i + 1) % n), Bytes::from_static(b"ping")).to_bytes();
            rt.with_stack(StackId(i), move |s| {
                s.call_as(PP, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
            });
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let done = (0..n).all(|i| {
                rt.with_stack(StackId(i), |s| {
                    s.with_module::<PingPong, _>(PP, |p| {
                        p.got.iter().any(|(_, d)| d.as_ref() == b"pong")
                    })
                    .unwrap()
                })
            });
            if done {
                break;
            }
            assert!(Instant::now() < deadline, "32-stack ping ring incomplete after 10s");
            std::thread::sleep(Duration::from_millis(10));
        }
        let stacks = rt.shutdown();
        assert_eq!(stacks.len(), n as usize);
    }

    #[test]
    fn timers_fire_in_real_time() {
        struct TimerBeat {
            beats: u32,
        }
        impl Module for TimerBeat {
            fn kind(&self) -> &str {
                "beat"
            }
            fn provides(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn requires(&self) -> Vec<ServiceId> {
                Vec::new()
            }
            fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
                ctx.set_timer(Dur::millis(10), 1);
            }
            fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
            fn on_response(&mut self, _: &mut ModuleCtx<'_>, _: Response) {}
            fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, _: TimerId, _: u64) {
                self.beats += 1;
                if self.beats < 5 {
                    ctx.set_timer(Dur::millis(10), 1);
                }
            }
        }
        let rt = Runtime::spawn(RuntimeConfig::new(1), |sc| {
            let mut s = Stack::new(sc, FactoryRegistry::new());
            s.add_module(Box::new(TimerBeat { beats: 0 }));
            s
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let beats = rt.with_stack(StackId(0), |s| {
                s.with_module::<TimerBeat, _>(BEAT, |b| b.beats).unwrap()
            });
            if beats >= 5 {
                break;
            }
            assert!(Instant::now() < deadline, "timers too slow: {beats}/5");
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.shutdown();
    }

    #[test]
    fn loss_model_drops_packets() {
        let mut cfg = RuntimeConfig::new(2);
        cfg.loss = 1.0;
        let rt = Runtime::spawn(cfg, mk);
        let data = (StackId(1), Bytes::from_static(b"ping")).to_bytes();
        rt.with_stack(StackId(0), move |s| {
            s.call_as(PP, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
        std::thread::sleep(Duration::from_millis(100));
        let got = rt
            .with_stack(StackId(1), |s| s.with_module::<PingPong, _>(PP, |p| p.got.len()).unwrap());
        assert_eq!(got, 0);
        let stats = rt.stats();
        assert_eq!(stats.packets_dropped, stats.packets_sent);
        rt.shutdown();
    }

    #[test]
    fn delay_is_a_delivery_timestamp_not_a_sleep() {
        // Pre-shard runtimes slept the whole node thread per delayed
        // packet. Now the packet waits on the receiving shard's wheel:
        // a control round-trip through the same (single) shard must
        // complete in a fraction of the delay.
        // Generous margins (2 s delay, 1 s bound) so a preempted CI
        // runner does not flake the property.
        let mut cfg = RuntimeConfig::new(2).with_shards(1);
        cfg.delay = Dur::secs(2);
        let rt = Runtime::spawn(cfg, mk);
        let data = (StackId(1), Bytes::from_static(b"ping")).to_bytes();
        rt.with_stack(StackId(0), move |s| {
            s.call_as(PP, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
        let t0 = Instant::now();
        let got_now = rt
            .with_stack(StackId(1), |s| s.with_module::<PingPong, _>(PP, |p| p.got.len()).unwrap());
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "shard stalled on packet delay: control round-trip took {:?}",
            t0.elapsed()
        );
        // Only meaningful if we actually read back before the delivery
        // time (a preempted runner could legitimately deliver by now).
        if t0.elapsed() < Duration::from_secs(2) {
            assert_eq!(got_now, 0, "packet must not arrive before its delivery time");
        }
        // The packet still arrives once its timestamp is due.
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            let got = rt.with_stack(StackId(1), |s| {
                s.with_module::<PingPong, _>(PP, |p| p.got.len()).unwrap()
            });
            if got > 0 {
                break;
            }
            assert!(Instant::now() < deadline, "delayed packet never delivered");
            std::thread::sleep(Duration::from_millis(10));
        }
        rt.shutdown();
    }

    #[test]
    fn drop_without_shutdown_stops_shard_threads() {
        let rt = Runtime::spawn(RuntimeConfig::new(8).with_shards(2), mk);
        let data = (StackId(1), Bytes::from_static(b"ping")).to_bytes();
        rt.with_stack(StackId(0), move |s| {
            s.call_as(PP, &ServiceId::new(dpu_core::svc::NET), net_ops::SEND, data)
        });
        // Drop joins the shard threads; completing (not hanging) is the
        // assertion.
        drop(rt);
    }

    #[test]
    fn shutdown_returns_final_stacks_in_id_order() {
        let rt = Runtime::spawn(RuntimeConfig::new(5).with_shards(2), mk);
        let stacks = rt.shutdown();
        assert_eq!(stacks.len(), 5);
        for (i, s) in stacks.iter().enumerate() {
            assert_eq!(s.id(), StackId(i as u32));
        }
    }
}
