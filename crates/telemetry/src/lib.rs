//! Unified observability for the DPU stacks: lock-free log-linear
//! histograms, a switch-phase timeline, and a crash flight recorder —
//! one [`TelemetryReport`] shape across all three hosts.
//!
//! The paper's claim is that a dynamic protocol update is *cheap under
//! live traffic*; the repo could previously only assert it was *safe*
//! (digests, conformance matrices). This crate measures what an
//! operator would actually watch during a switch:
//!
//! - **delivery latency** — end-to-end probe send → adeliver, per
//!   stack, as a [`Histogram`] whose p999 survives bursty workloads
//!   that averages hide;
//! - **switch blackout** — a [`SwitchTimeline`] stamping every switch's
//!   requested / flushed / activated / first-delivery instants, so
//!   benches report "how long did clients go dark" per variant;
//! - **queue pressure** — dispatch-cascade depth and scratch-pool
//!   occupancy histograms;
//! - **postmortems** — a fixed-capacity [`FlightRecorder`] per stack
//!   that failing soaks dump instead of an opaque digest mismatch.
//!
//! # Overhead discipline
//!
//! Every stack embeds one [`StackTelemetry`]. Recording is alloc-free
//! and wait-free: a stack is single-threaded by construction (exactly
//! like its `WireScratch` pool), so counters are plain integers —
//! no locks, no atomics — and hosts aggregate by merge-by-addition,
//! which is order-independent and therefore cannot perturb the
//! `par_equiv` serial/parallel bit-equality. Telemetry never feeds back
//! into protocol behaviour, so the golden trace fingerprint is
//! untouched by construction. [`TelemetryConfig::off()`] leaves the
//! state unallocated: every record call is then a single
//! `Option` branch, and the per-stack cost is one pointer — the mode
//! the 65536-stack capacity smoke runs in. Enabled, the state is one
//! boxed block of fixed-size histograms plus the flight ring
//! (~17 KB/stack; see ARCHITECTURE.md "Observability" for the budget).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod json;
pub mod report;
pub mod timeline;

pub use flight::{FlightEvent, FlightKind, FlightRecorder, FLIGHT_CAPACITY};
pub use hist::{HistSummary, Histogram};
pub use report::{
    SocketCounters, SwitchSummary, TelemetryAggregate, TelemetryReport, TransportCounters,
    WireCounters,
};
pub use timeline::{SwitchRecord, SwitchTimeline};

/// Per-stack telemetry switchboard, set at stack construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. Off = no state allocated, every record call is a
    /// single branch on a `None`.
    pub enabled: bool,
    /// Flight-recorder ring capacity (events retained per stack).
    pub flight_capacity: usize,
}

impl Default for TelemetryConfig {
    /// On, with the default flight capacity — matching the repo's
    /// trace-on-by-default convention for tests and examples.
    fn default() -> Self {
        TelemetryConfig { enabled: true, flight_capacity: FLIGHT_CAPACITY }
    }
}

impl TelemetryConfig {
    /// Telemetry fully disabled: one pointer of per-stack cost, record
    /// calls compile to a branch. The capacity smokes run this.
    pub fn off() -> TelemetryConfig {
        TelemetryConfig { enabled: false, flight_capacity: 0 }
    }

    /// Telemetry on with default capacities.
    pub fn on() -> TelemetryConfig {
        TelemetryConfig::default()
    }
}

/// The allocated half of a [`StackTelemetry`]: fixed-size histograms,
/// the switch timeline, and the flight ring. One heap block per
/// instrumented stack; nothing here grows during a run.
#[derive(Debug)]
pub struct TelemetryState {
    /// End-to-end delivery latency, nanoseconds.
    pub delivery_latency: Histogram,
    /// Dispatch-cascade depth (stack steps per external trigger).
    pub cascade_depth: Histogram,
    /// Scratch-pool occupancy at packet arrival, bytes.
    pub scratch_occupancy: Histogram,
    /// rp2p resequencing-buffer depth at out-of-order insert.
    pub reseq_depth: Histogram,
    /// Switch-phase timeline.
    pub switches: SwitchTimeline,
    /// Crash flight recorder.
    pub flight: FlightRecorder,
    /// Steps taken in the cascade currently being dispatched.
    cascade_run: u32,
}

/// One stack's telemetry: embedded in every `Stack`, single-threaded
/// like the rest of the stack's state. All record methods are `#[inline]`
/// and reduce to one branch when telemetry is off.
#[derive(Debug, Default)]
pub struct StackTelemetry {
    state: Option<Box<TelemetryState>>,
}

impl StackTelemetry {
    /// Build per the config: `None` state when disabled.
    pub fn new(cfg: &TelemetryConfig) -> StackTelemetry {
        if !cfg.enabled {
            return StackTelemetry { state: None };
        }
        StackTelemetry {
            state: Some(Box::new(TelemetryState {
                delivery_latency: Histogram::new(),
                cascade_depth: Histogram::new(),
                scratch_occupancy: Histogram::new(),
                reseq_depth: Histogram::new(),
                switches: SwitchTimeline::new(),
                flight: FlightRecorder::new(cfg.flight_capacity),
                cascade_run: 0,
            })),
        }
    }

    /// A disabled instance (what `Default` also gives).
    pub fn disabled() -> StackTelemetry {
        StackTelemetry { state: None }
    }

    /// Whether this stack records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// The allocated state, if enabled (aggregation and dumps).
    pub fn state(&self) -> Option<&TelemetryState> {
        self.state.as_deref()
    }

    /// An end-to-end delivery: records latency, closes a pending switch
    /// record if the new module is active, and logs a flight event.
    #[inline]
    pub fn note_delivery(&mut self, now_ns: u64, latency_ns: u64) {
        let Some(s) = &mut self.state else { return };
        s.delivery_latency.record(latency_ns);
        s.flight.push(now_ns, FlightKind::Delivery, latency_ns);
        if let Some(done) = s.switches.note_delivery(now_ns) {
            s.flight.push(now_ns, FlightKind::SwitchFirstDelivery, done.ordinal);
        }
    }

    /// An upward delivery with no latency sample attached — the switch
    /// layer calls this for every `ADELIVER` it forwards, so the
    /// blackout window closes even on stacks whose consumers do not
    /// timestamp their messages (a replicated service, say, rather
    /// than a probe). Only the timeline moves; the latency histogram
    /// is fed solely by [`Self::note_delivery`].
    #[inline]
    pub fn note_switch_delivery(&mut self, now_ns: u64) {
        let Some(s) = &mut self.state else { return };
        if let Some(done) = s.switches.note_delivery(now_ns) {
            s.flight.push(now_ns, FlightKind::SwitchFirstDelivery, done.ordinal);
        }
    }

    /// One stack step dispatched inside the current cascade.
    #[inline]
    pub fn cascade_step(&mut self) {
        if let Some(s) = &mut self.state {
            s.cascade_run += 1;
        }
    }

    /// The cascade drained: record its depth and reset.
    #[inline]
    pub fn cascade_end(&mut self) {
        let Some(s) = &mut self.state else { return };
        if s.cascade_run > 0 {
            s.cascade_depth.record(u64::from(s.cascade_run));
            s.cascade_run = 0;
        }
    }

    /// Scratch-pool occupancy sample (bytes), taken at packet arrival.
    #[inline]
    pub fn record_scratch_occupancy(&mut self, bytes: u64) {
        if let Some(s) = &mut self.state {
            s.scratch_occupancy.record(bytes);
        }
    }

    /// rp2p resequencing-buffer depth after an out-of-order insert.
    #[inline]
    pub fn record_reseq_depth(&mut self, depth: u64) {
        if let Some(s) = &mut self.state {
            s.reseq_depth.record(depth);
        }
    }

    /// The stack learned a protocol switch is coming (idempotent while
    /// one is pending).
    #[inline]
    pub fn switch_requested(&mut self, now_ns: u64) {
        let Some(s) = &mut self.state else { return };
        let fresh = s.switches.pending().is_none();
        s.switches.requested(now_ns);
        if fresh {
            let ordinal = s.switches.pending().map_or(0, |r| r.ordinal);
            s.flight.push(now_ns, FlightKind::SwitchRequested, ordinal);
        }
    }

    /// The outgoing module flushed and was unbound.
    #[inline]
    pub fn switch_flushed(&mut self, now_ns: u64) {
        let Some(s) = &mut self.state else { return };
        s.switches.flushed(now_ns);
        let ordinal = s.switches.pending().map_or(0, |r| r.ordinal);
        s.flight.push(now_ns, FlightKind::SwitchFlushed, ordinal);
    }

    /// The replacement module was created and bound.
    #[inline]
    pub fn switch_activated(&mut self, now_ns: u64) {
        let Some(s) = &mut self.state else { return };
        s.switches.activated(now_ns);
        let ordinal = s.switches.pending().map_or(0, |r| r.ordinal);
        s.flight.push(now_ns, FlightKind::SwitchActivated, ordinal);
    }

    /// The stack crashed (fail-stop).
    #[inline]
    pub fn note_crash(&mut self, now_ns: u64) {
        if let Some(s) = &mut self.state {
            s.flight.push(now_ns, FlightKind::Crash, 0);
        }
    }

    /// A module destroyed itself.
    #[inline]
    pub fn note_module_destroyed(&mut self, now_ns: u64) {
        if let Some(s) = &mut self.state {
            s.flight.push(now_ns, FlightKind::ModuleDestroyed, 0);
        }
    }

    /// rp2p exhausted retransmissions toward `peer`.
    #[inline]
    pub fn note_retransmit_exhausted(&mut self, now_ns: u64, peer: u64) {
        if let Some(s) = &mut self.state {
            s.flight.push(now_ns, FlightKind::RetransmitExhausted, peer);
        }
    }

    /// Render this stack's flight ring as postmortem lines (no-op when
    /// disabled).
    pub fn dump_flight(&self, label: &str, out: &mut String) {
        if let Some(s) = &self.state {
            s.flight.dump(label, out);
        }
    }

    /// Resident bytes of the telemetry state: the boxed block plus the
    /// heap behind each component (0 when disabled). The pointer-sized
    /// handle itself is counted by the stack that embeds it.
    pub fn mem_bytes(&self) -> usize {
        self.state.as_ref().map_or(0, |s| {
            std::mem::size_of::<TelemetryState>()
                + s.delivery_latency.mem_bytes()
                + s.cascade_depth.mem_bytes()
                + s.scratch_occupancy.mem_bytes()
                + s.reseq_depth.mem_bytes()
                + s.switches.mem_bytes()
                + s.flight.mem_bytes()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_allocates_nothing_and_records_nowhere() {
        let mut t = StackTelemetry::new(&TelemetryConfig::off());
        assert!(!t.is_enabled());
        t.note_delivery(10, 5);
        t.cascade_step();
        t.cascade_end();
        t.record_scratch_occupancy(100);
        t.switch_requested(1);
        t.switch_activated(2);
        t.note_delivery(3, 1);
        assert!(t.state().is_none());
        assert_eq!(t.mem_bytes(), 0);
        assert_eq!(std::mem::size_of::<StackTelemetry>(), std::mem::size_of::<usize>());
    }

    #[test]
    fn cascade_depth_counts_steps_per_drain() {
        let mut t = StackTelemetry::new(&TelemetryConfig::default());
        for _ in 0..3 {
            t.cascade_step();
        }
        t.cascade_end();
        t.cascade_step();
        t.cascade_end();
        t.cascade_end(); // empty drains record nothing
        let s = t.state().unwrap();
        assert_eq!(s.cascade_depth.count(), 2);
        assert_eq!(s.cascade_depth.max(), 3);
        assert_eq!(s.cascade_depth.min(), 1);
    }

    #[test]
    fn delivery_closes_switch_and_logs_flight_trail() {
        let mut t = StackTelemetry::new(&TelemetryConfig::default());
        t.switch_requested(100);
        t.switch_requested(150); // announcement after CHANGE_OP: no second flight event
        t.switch_flushed(200);
        t.switch_activated(250);
        t.note_delivery(400, 42);
        let s = t.state().unwrap();
        assert_eq!(s.switches.completed(), 1);
        assert_eq!(s.switches.blackout().max(), 300);
        let kinds: Vec<FlightKind> = s.flight.events().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FlightKind::SwitchRequested,
                FlightKind::SwitchFlushed,
                FlightKind::SwitchActivated,
                FlightKind::Delivery,
                FlightKind::SwitchFirstDelivery,
            ]
        );
    }

    #[test]
    fn enabled_mem_budget_is_documented() {
        let t = StackTelemetry::new(&TelemetryConfig::default());
        let bytes = t.mem_bytes();
        // The ARCHITECTURE.md budget: fixed, and comfortably under 20 KB
        // per instrumented stack (4 + 2 histograms ≈ 2.4 KB each, a
        // 64-event flight ring, the timeline bookkeeping).
        assert!(bytes > 10_000, "suspiciously small: {bytes}");
        assert!(bytes < 20_000, "telemetry state grew past its budget: {bytes}");
    }
}
