//! Switch-phase timeline: per-stack lifecycle stamps for every
//! protocol switch.
//!
//! A switch, as a stack experiences it, has four observable instants:
//!
//! 1. **requested** — the stack learns a switch is coming (the
//!    initiator's `CHANGE_OP` call, or delivery of the totally-ordered
//!    `NewAbcast` announcement elsewhere).
//! 2. **flushed** — the outgoing module has drained and is unbound.
//! 3. **activated** — the replacement module is created and bound.
//! 4. **first_delivery** — the first message the *new* module delivers
//!    end-to-end.
//!
//! The *blackout window* is `first_delivery − requested`: how long a
//! client at this stack goes without deliveries because of the switch.
//! Deliveries that land between `requested` and `activated` came from
//! the old module, so they do not close the record — only a
//! post-activation delivery does. `requested` is idempotent while a
//! record is pending (a stack can both initiate a switch and later see
//! its announcement).
//!
//! Completed records fold into two histograms (blackout and
//! flush→activate gap) plus a bounded list of raw records for the
//! flight dump, so the memory footprint is fixed no matter how many
//! switches a soak performs.

use crate::hist::Histogram;

/// Raw switch records retained (beyond this, only histograms grow).
const RETAINED_RECORDS: usize = 16;

/// One completed (or in-flight) switch on one stack. Times are
/// stack-local nanoseconds; `u64::MAX` marks a stamp not yet taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchRecord {
    /// Monotonic per-stack switch ordinal (1-based).
    pub ordinal: u64,
    /// When the stack learned of the switch.
    pub requested_ns: u64,
    /// When the outgoing module finished flushing (unbound).
    pub flushed_ns: u64,
    /// When the replacement module was created and bound.
    pub activated_ns: u64,
    /// First delivery by the new module (closes the record).
    pub first_delivery_ns: u64,
}

const UNSET: u64 = u64::MAX;

impl SwitchRecord {
    fn new(ordinal: u64, requested_ns: u64) -> SwitchRecord {
        SwitchRecord {
            ordinal,
            requested_ns,
            flushed_ns: UNSET,
            activated_ns: UNSET,
            first_delivery_ns: UNSET,
        }
    }

    /// Blackout window (`first_delivery − requested`), if complete.
    pub fn blackout_ns(&self) -> Option<u64> {
        (self.first_delivery_ns != UNSET)
            .then(|| self.first_delivery_ns.saturating_sub(self.requested_ns))
    }

    /// Flush→activate gap, if both stamps were taken.
    pub fn swap_gap_ns(&self) -> Option<u64> {
        (self.flushed_ns != UNSET && self.activated_ns != UNSET)
            .then(|| self.activated_ns.saturating_sub(self.flushed_ns))
    }
}

/// Per-stack switch timeline: at most one pending record, fixed-size
/// history, histograms for the two derived windows.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchTimeline {
    pending: Option<SwitchRecord>,
    completed: u64,
    recent: Vec<SwitchRecord>,
    /// `first_delivery − requested` of completed switches.
    blackout: Histogram,
    /// `activated − flushed` of completed switches.
    swap_gap: Histogram,
}

impl Default for SwitchTimeline {
    fn default() -> Self {
        SwitchTimeline::new()
    }
}

impl SwitchTimeline {
    /// An empty timeline.
    pub fn new() -> SwitchTimeline {
        SwitchTimeline {
            pending: None,
            completed: 0,
            recent: Vec::with_capacity(RETAINED_RECORDS),
            blackout: Histogram::new(),
            swap_gap: Histogram::new(),
        }
    }

    /// Stamp "the stack learned of a switch". Idempotent while a record
    /// is pending: the initiator calls this at `CHANGE_OP` and again
    /// when the totally-ordered announcement comes back.
    pub fn requested(&mut self, now_ns: u64) {
        if self.pending.is_none() {
            let ordinal = self.completed + 1;
            self.pending = Some(SwitchRecord::new(ordinal, now_ns));
        }
    }

    /// Stamp "old module flushed and unbound".
    pub fn flushed(&mut self, now_ns: u64) {
        if let Some(rec) = &mut self.pending {
            if rec.flushed_ns == UNSET {
                rec.flushed_ns = now_ns;
            }
        }
    }

    /// Stamp "replacement module created and bound".
    pub fn activated(&mut self, now_ns: u64) {
        if let Some(rec) = &mut self.pending {
            if rec.activated_ns == UNSET {
                rec.activated_ns = now_ns;
            }
        }
    }

    /// Note an end-to-end delivery. Closes the pending record — and
    /// returns the completed record — only if the new module is already
    /// active; pre-activation deliveries came from the old module and
    /// leave the record open.
    pub fn note_delivery(&mut self, now_ns: u64) -> Option<SwitchRecord> {
        let rec = self.pending.as_mut()?;
        if rec.activated_ns == UNSET {
            return None;
        }
        rec.first_delivery_ns = now_ns;
        let done = self.pending.take().expect("checked above");
        self.completed += 1;
        if let Some(b) = done.blackout_ns() {
            self.blackout.record(b);
        }
        if let Some(g) = done.swap_gap_ns() {
            self.swap_gap.record(g);
        }
        if self.recent.len() < RETAINED_RECORDS {
            self.recent.push(done);
        }
        Some(done)
    }

    /// Completed switches on this stack.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The in-flight record, if a switch is underway.
    pub fn pending(&self) -> Option<&SwitchRecord> {
        self.pending.as_ref()
    }

    /// First few completed records, oldest first (bounded).
    pub fn recent(&self) -> &[SwitchRecord] {
        &self.recent
    }

    /// Blackout-window histogram (`first_delivery − requested`, ns).
    pub fn blackout(&self) -> &Histogram {
        &self.blackout
    }

    /// Flush→activate gap histogram (ns).
    pub fn swap_gap(&self) -> &Histogram {
        &self.swap_gap
    }

    /// Fold another stack's timeline into this aggregate: histogram
    /// addition plus counter sums; raw records merge up to the retained
    /// cap. Order-independent on the histogram side.
    pub fn merge(&mut self, other: &SwitchTimeline) {
        self.completed += other.completed;
        self.blackout.merge(&other.blackout);
        self.swap_gap.merge(&other.swap_gap);
        for rec in &other.recent {
            if self.recent.len() == RETAINED_RECORDS {
                break;
            }
            self.recent.push(*rec);
        }
    }

    /// Heap bytes behind the timeline (the struct itself is counted by
    /// its embedder).
    pub fn mem_bytes(&self) -> usize {
        self.recent.capacity() * std::mem::size_of::<SwitchRecord>()
            + self.blackout.mem_bytes()
            + self.swap_gap.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_lifecycle_produces_blackout_and_gap() {
        let mut tl = SwitchTimeline::new();
        tl.requested(1_000);
        tl.flushed(4_000);
        tl.activated(5_000);
        let done = tl.note_delivery(9_000).expect("record should close");
        assert_eq!(done.blackout_ns(), Some(8_000));
        assert_eq!(done.swap_gap_ns(), Some(1_000));
        assert_eq!(tl.completed(), 1);
        assert_eq!(tl.blackout().count(), 1);
        assert_eq!(tl.swap_gap().count(), 1);
    }

    #[test]
    fn pre_activation_deliveries_do_not_close_the_record() {
        let mut tl = SwitchTimeline::new();
        tl.requested(100);
        assert!(tl.note_delivery(200).is_none(), "old-module delivery must not close");
        tl.flushed(300);
        assert!(tl.note_delivery(400).is_none(), "still not activated");
        tl.activated(500);
        let done = tl.note_delivery(600).expect("post-activation delivery closes");
        assert_eq!(done.blackout_ns(), Some(500));
    }

    #[test]
    fn requested_is_idempotent_while_pending() {
        let mut tl = SwitchTimeline::new();
        tl.requested(100);
        tl.requested(250); // announcement arrives after the initiator's CHANGE_OP
        tl.activated(300);
        let done = tl.note_delivery(400).unwrap();
        assert_eq!(done.requested_ns, 100, "first stamp wins");
        // A new switch may start afresh once the previous one closed.
        tl.requested(1_000);
        assert_eq!(tl.pending().unwrap().requested_ns, 1_000);
        assert_eq!(tl.pending().unwrap().ordinal, 2);
    }

    #[test]
    fn deliveries_with_no_pending_switch_are_ignored() {
        let mut tl = SwitchTimeline::new();
        assert!(tl.note_delivery(50).is_none());
        assert_eq!(tl.completed(), 0);
    }

    #[test]
    fn merge_sums_histograms_and_counts() {
        let mut a = SwitchTimeline::new();
        a.requested(0);
        a.activated(10);
        a.note_delivery(30);
        let mut b = SwitchTimeline::new();
        b.requested(0);
        b.activated(40);
        b.note_delivery(100);
        let mut agg = SwitchTimeline::new();
        agg.merge(&a);
        agg.merge(&b);
        assert_eq!(agg.completed(), 2);
        assert_eq!(agg.blackout().count(), 2);
        assert_eq!(agg.blackout().max(), 100);
        assert_eq!(agg.recent().len(), 2);
    }
}
