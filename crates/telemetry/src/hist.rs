//! Log-linear fixed-bucket histograms (HDR style).
//!
//! The bucket geometry is the classic log-linear scheme: values below
//! `2^SUB_BITS` get exact unit buckets; every higher power-of-two range
//! is split into `2^SUB_BITS` equal-width sub-buckets, so relative
//! error is bounded at `2^-SUB_BITS` (±6.25% with the 4 sub-bit
//! geometry used here) across the whole range. Values above
//! [`Histogram::MAX_TRACKABLE`] saturate into the last bucket (the
//! exact observed maximum is tracked separately).
//!
//! Recording is alloc-free and wait-free: one array index computation
//! (a `leading_zeros`, two shifts) and a counter increment, no locks,
//! no atomics — each stack owns its histogram exclusively, exactly like
//! its `WireScratch` pool, and hosts aggregate by [`Histogram::merge`].
//! Merging is pure bucket-count addition, so per-shard partials fold to
//! the same totals whatever order (or worker count) produced them —
//! the property that keeps `par_equiv`'s serial/parallel bit-equality
//! intact when reports include percentiles.

use std::fmt;

/// Sub-bucket precision: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets (relative error ≤ 2^-SUB_BITS).
const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two range.
const SUB: usize = 1 << SUB_BITS;
/// Highest bit position tracked exactly; values at or above
/// `2^(MAX_EXP+1)` saturate into the last bucket.
const MAX_EXP: u32 = 39;
/// Total bucket count for the geometry above.
const NBUCKETS: usize = ((MAX_EXP - SUB_BITS + 1) as usize + 1) * SUB;

/// A fixed-size log-linear histogram of `u64` samples.
///
/// With the default geometry (4 sub-bits, max exponent 39) the value
/// range is `0 ..= 2^40-1` — for nanosecond latencies that is ~18
/// minutes at ±6.25% resolution — in `592 × 4` bytes of counters.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counters. `u32` per bucket keeps the whole histogram at
    /// ~2.4 KB (the per-stack budget matters at 10^5 stacks);
    /// increments saturate rather than wrap, so a pathological soak
    /// degrades percentile precision, never correctness.
    counts: Box<[u32; NBUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Largest value recorded without saturating into the last bucket.
    pub const MAX_TRACKABLE: u64 = (1 << (MAX_EXP + 1)) - 1;

    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { counts: Box::new([0; NBUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Bucket index of `value` (saturating at the last bucket).
    #[inline]
    fn index(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        if msb > MAX_EXP {
            return NBUCKETS - 1;
        }
        let group = (msb - SUB_BITS + 1) as usize;
        let sub = ((value >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        group * SUB + sub
    }

    /// Representative value of bucket `i` (midpoint of its range), for
    /// percentile reconstruction.
    fn bucket_value(i: usize) -> u64 {
        if i < SUB {
            return i as u64;
        }
        let group = (i / SUB) as u32;
        let sub = (i % SUB) as u64;
        let msb = group + SUB_BITS - 1;
        let width = 1u64 << (msb - SUB_BITS);
        (1u64 << msb) + sub * width + width / 2
    }

    /// Record one sample. Alloc-free, wait-free: an index computation
    /// and a saturating counter increment.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let i = Self::index(value);
        self.counts[i] = self.counts[i].saturating_add(1);
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold `other` into `self`: pure addition on every bucket, so
    /// folding is associative and commutative — per-shard partials
    /// merge to the same totals in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`, reconstructed from the bucket
    /// midpoints (relative error ≤ 2^-SUB_BITS); clamped to the exact
    /// observed `[min, max]`. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if target == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += u64::from(c);
            if seen >= target {
                // The saturation bucket has no meaningful midpoint; its
                // representative is the exact observed maximum.
                if i == NBUCKETS - 1 {
                    return self.max;
                }
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Heap bytes behind this histogram — the boxed bucket array. The
    /// struct itself is counted by whatever embeds it (structural
    /// memory-audit convention shared with `Stack::mem_bytes`).
    pub fn mem_bytes(&self) -> usize {
        NBUCKETS * std::mem::size_of::<u32>()
    }

    /// Condense into the fixed percentile summary reports carry.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .finish()
    }
}

/// The fixed percentile summary of one [`Histogram`], as carried by
/// [`crate::TelemetryReport`]. Values are in the histogram's unit
/// (nanoseconds for the latency histograms, plain counts otherwise).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistSummary {
    /// Recorded samples.
    pub count: u64,
    /// Exact observed minimum.
    pub min: u64,
    /// Exact observed maximum.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median (bucket-midpoint reconstruction, ±6.25%).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        // Unit buckets below 2^SUB_BITS: percentiles are exact.
        assert_eq!(h.percentile(0.5), 7);
        assert_eq!(h.percentile(1.0), 15);
    }

    #[test]
    fn index_is_monotonic_and_in_range() {
        let mut probes: Vec<u64> = Vec::new();
        for shift in 0..63 {
            let v = 1u64 << shift;
            probes.extend([v, v + 1, v + (v >> 1), v.saturating_mul(2) - 1]);
        }
        probes.sort_unstable();
        let mut last = 0usize;
        for probe in probes {
            let i = Histogram::index(probe);
            assert!(i < NBUCKETS, "index {i} out of range for {probe}");
            assert!(i >= last, "index not monotonic at {probe}");
            last = i;
        }
        assert_eq!(Histogram::index(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn bucket_value_bounds_relative_error() {
        for probe in [17u64, 1_000, 123_456, 7_000_000, 5_000_000_000, Histogram::MAX_TRACKABLE] {
            let mid = Histogram::bucket_value(Histogram::index(probe));
            let err = (mid as f64 - probe as f64).abs() / probe as f64;
            assert!(err <= 1.0 / SUB as f64, "error {err} too large for {probe} (mid {mid})");
        }
    }

    #[test]
    fn percentiles_of_uniform_range() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v * 1_000); // 1µs .. 100ms in 1µs steps
        }
        let p50 = h.percentile(0.5) as f64;
        let p99 = h.percentile(0.99) as f64;
        assert!((p50 / 50_000_000.0 - 1.0).abs() < 0.07, "p50 {p50}");
        assert!((p99 / 99_000_000.0 - 1.0).abs() < 0.07, "p99 {p99}");
        assert_eq!(h.percentile(1.0), 100_000_000);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut rng = 0x1234_5678u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut whole = Histogram::new();
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for i in 0..30_000 {
            let v = next() % 10_000_000;
            whole.record(v);
            parts[i % 3].record(v);
        }
        // Fold the partials in a different order than they were filled.
        let mut folded = Histogram::new();
        for p in [&parts[2], &parts[0], &parts[1]] {
            folded.merge(p);
        }
        assert_eq!(folded, whole, "merge-by-addition must be order-independent");
        assert_eq!(folded.summary(), whole.summary());
    }

    #[test]
    fn oversize_values_saturate_and_keep_exact_max() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX, "last bucket clamps to the exact max");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
