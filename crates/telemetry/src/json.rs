//! A minimal pretty-printing JSON writer.
//!
//! The repo commits machine-readable benchmark baselines
//! (`BENCH_*.json`) and telemetry reports; each used to hand-roll its
//! own `format!` JSON, which meant four slightly different escaping and
//! indentation dialects. This writer is the single implementation:
//! two-space indented, keys in call order, comma bookkeeping handled by
//! a container stack. `dpu_bench::json` re-exports it for the bench
//! bins; [`crate::TelemetryReport::to_json`] uses it directly.
//!
//! Not a serializer framework — no derive, no reflection, no
//! non-finite-float cleverness (non-finite writes `null`). A `raw`
//! escape hatch splices pre-formatted JSON (e.g. a committed baseline
//! block) without re-parsing it.

/// Incremental pretty-printed JSON builder.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` once it has a member (so
    /// the next member needs a leading comma).
    stack: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn newline_indent(&mut self) {
        self.buf.push('\n');
        for _ in 0..self.stack.len() {
            self.buf.push_str("  ");
        }
    }

    /// Start a member: comma if needed, newline, indent.
    fn next_member(&mut self) {
        if let Some(has) = self.stack.last_mut() {
            if *has {
                self.buf.push(',');
            }
            *has = true;
            self.newline_indent();
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Open an object as the next value (root, array element, or after
    /// [`key`](Self::key)).
    pub fn begin_obj(&mut self) -> &mut Self {
        self.buf.push('{');
        self.stack.push(false);
        self
    }

    /// Close the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        let had_members = self.stack.pop().unwrap_or(false);
        if had_members {
            self.newline_indent();
        }
        self.buf.push('}');
        self
    }

    /// Open an array as the next value.
    pub fn begin_arr(&mut self) -> &mut Self {
        self.buf.push('[');
        self.stack.push(false);
        self
    }

    /// Close the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        let had_members = self.stack.pop().unwrap_or(false);
        if had_members {
            self.newline_indent();
        }
        self.buf.push(']');
        self
    }

    /// Write `"k": ` — follow with a value or container call.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.next_member();
        self.push_escaped(k);
        self.buf.push_str(": ");
        self
    }

    /// Array-element separator: comma/newline before a bare value or
    /// container in an array.
    pub fn elem(&mut self) -> &mut Self {
        self.next_member();
        self
    }

    /// Bare string value (after `key`/`elem`).
    pub fn str_val(&mut self, v: &str) -> &mut Self {
        self.push_escaped(v);
        self
    }

    /// Bare unsigned value.
    pub fn u64_val(&mut self, v: u64) -> &mut Self {
        self.buf.push_str(&v.to_string());
        self
    }

    /// Bare float value with `decimals` fractional digits (non-finite
    /// floats become `null`).
    pub fn f64_val(&mut self, v: f64, decimals: usize) -> &mut Self {
        if v.is_finite() {
            self.buf.push_str(&format!("{v:.decimals$}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Bare boolean value.
    pub fn bool_val(&mut self, v: bool) -> &mut Self {
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Splice pre-formatted JSON verbatim as the next value. The caller
    /// owns its validity and indentation.
    pub fn raw_val(&mut self, raw: &str) -> &mut Self {
        self.buf.push_str(raw);
        self
    }

    /// `"k": "v"`.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).str_val(v)
    }

    /// `"k": 42`.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64_val(v)
    }

    /// `"k": 1.25` with fixed fractional digits.
    pub fn field_f64(&mut self, k: &str, v: f64, decimals: usize) -> &mut Self {
        self.key(k).f64_val(v, decimals)
    }

    /// `"k": true`.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k).bool_val(v)
    }

    /// `"k": <raw>`.
    pub fn field_raw(&mut self, k: &str, raw: &str) -> &mut Self {
        self.key(k).raw_val(raw)
    }

    /// Finish: all containers must be closed. Appends a trailing
    /// newline (committed baselines end in one).
    pub fn finish(mut self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        self.buf.push('\n');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_object_renders_two_space_indented() {
        let mut w = JsonWriter::new();
        w.begin_obj().field_str("bench", "demo").field_u64("n", 1024).key("rows").begin_arr();
        for n in [1u64, 2] {
            w.elem().begin_obj().field_u64("n", n).field_f64("rate", 0.5 * n as f64, 2).end_obj();
        }
        w.end_arr().end_obj();
        let out = w.finish();
        let expect = r#"{
  "bench": "demo",
  "n": 1024,
  "rows": [
    {
      "n": 1,
      "rate": 0.50
    },
    {
      "n": 2,
      "rate": 1.00
    }
  ]
}
"#;
        assert_eq!(out, expect);
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_obj().field_str("msg", "a \"quoted\"\nline\t\\").end_obj();
        let out = w.finish();
        assert_eq!(out, "{\n  \"msg\": \"a \\\"quoted\\\"\\nline\\t\\\\\"\n}\n");
    }

    #[test]
    fn empty_containers_stay_compact() {
        let mut w = JsonWriter::new();
        w.begin_obj().key("rows").begin_arr().end_arr().key("meta").begin_obj().end_obj().end_obj();
        assert_eq!(w.finish(), "{\n  \"rows\": [],\n  \"meta\": {}\n}\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_obj().field_f64("bad", f64::NAN, 2).end_obj();
        assert_eq!(w.finish(), "{\n  \"bad\": null\n}\n");
    }

    #[test]
    fn raw_splices_verbatim() {
        let mut w = JsonWriter::new();
        w.begin_obj().field_raw("baseline", "{ \"x\": 1 }").end_obj();
        assert_eq!(w.finish(), "{\n  \"baseline\": { \"x\": 1 }\n}\n");
    }

    #[test]
    #[should_panic(expected = "unclosed JSON container")]
    fn finish_rejects_unclosed_containers() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        let _ = w.finish();
    }
}
