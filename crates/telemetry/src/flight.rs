//! Crash flight recorder: a fixed-capacity ring of the last N telemetry
//! events per stack.
//!
//! The recorder exists for the moment a soak assertion trips or a
//! `cross_switch_net` child dies: instead of an opaque digest mismatch,
//! the harness dumps each stack's final seconds of life — deliveries,
//! switch phases, crashes, module teardown — in event order. Capacity
//! is fixed at construction; once full, each push evicts the oldest
//! entry and bumps `dropped`, so the dump always says how much history
//! it is missing. Pushing is alloc-free: the ring is pre-sized and
//! events are plain `Copy` records.

use std::collections::VecDeque;
use std::fmt;

/// Default ring capacity (events retained per stack).
pub const FLIGHT_CAPACITY: usize = 64;

/// What happened, for the dump reader. Kinds mirror the trace event
/// vocabulary but stay a closed enum so the recorder needs no strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A message reached its final consumer (probe/application layer).
    Delivery,
    /// A protocol switch was requested on this stack.
    SwitchRequested,
    /// The outgoing module finished flushing and was unbound.
    SwitchFlushed,
    /// The replacement module was created and bound.
    SwitchActivated,
    /// First post-activation delivery — the blackout window closed.
    SwitchFirstDelivery,
    /// The stack crashed (fail-stop).
    Crash,
    /// A module destroyed itself (`ctx.destroy_self`).
    ModuleDestroyed,
    /// rp2p gave up on a peer after exhausting retransmissions.
    RetransmitExhausted,
}

impl fmt::Display for FlightKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlightKind::Delivery => "delivery",
            FlightKind::SwitchRequested => "switch-requested",
            FlightKind::SwitchFlushed => "switch-flushed",
            FlightKind::SwitchActivated => "switch-activated",
            FlightKind::SwitchFirstDelivery => "switch-first-delivery",
            FlightKind::Crash => "crash",
            FlightKind::ModuleDestroyed => "module-destroyed",
            FlightKind::RetransmitExhausted => "retransmit-exhausted",
        };
        f.write_str(s)
    }
}

/// One flight-recorder entry: when, what, and one kind-specific detail
/// word (switch sequence number, latency, peer id — the dump labels it
/// generically).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Stack-local time in nanoseconds.
    pub at_ns: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// Kind-specific detail (0 when the kind has none).
    pub detail: u64,
}

/// Fixed-capacity ring of the most recent [`FlightEvent`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightRecorder {
    ring: VecDeque<FlightEvent>,
    capacity: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events. The ring is
    /// allocated up front so pushes never allocate.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder { ring: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// Append an event, evicting (and counting) the oldest when full.
    #[inline]
    pub fn push(&mut self, at_ns: u64, kind: FlightKind, detail: u64) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightEvent { at_ns, kind, detail });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// Events evicted to make room (history the dump is missing).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Heap bytes behind the ring (the struct itself is counted by its
    /// embedder).
    pub fn mem_bytes(&self) -> usize {
        self.ring.capacity() * std::mem::size_of::<FlightEvent>()
    }

    /// Render the ring as postmortem lines, one event per line, prefixed
    /// with `label` (typically the stack id). Used by soak harnesses and
    /// the cross-process demo on failure.
    pub fn dump(&self, label: &str, out: &mut String) {
        use fmt::Write;
        let _ = writeln!(
            out,
            "[{label}] flight recorder: {} events retained, {} dropped",
            self.ring.len(),
            self.dropped
        );
        for ev in &self.ring {
            let _ = writeln!(
                out,
                "[{label}]   t={:>12}ns  {:<22} detail={}",
                ev.at_ns,
                ev.kind.to_string(),
                ev.detail
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.push(i, FlightKind::Delivery, i);
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.dropped(), 6);
        let kept: Vec<u64> = fr.events().map(|e| e.at_ns).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest evicted first");
    }

    #[test]
    fn push_never_reallocates() {
        let mut fr = FlightRecorder::new(8);
        let cap0 = fr.ring.capacity();
        for i in 0..1000u64 {
            fr.push(i, FlightKind::Crash, 0);
        }
        assert_eq!(fr.ring.capacity(), cap0, "ring must stay at its pre-sized capacity");
    }

    #[test]
    fn dump_mentions_drops_and_every_event() {
        let mut fr = FlightRecorder::new(2);
        fr.push(10, FlightKind::SwitchRequested, 1);
        fr.push(20, FlightKind::SwitchActivated, 1);
        fr.push(30, FlightKind::SwitchFirstDelivery, 1);
        let mut out = String::new();
        fr.dump("s3", &mut out);
        assert!(out.contains("1 dropped"), "{out}");
        assert!(out.contains("switch-activated"), "{out}");
        assert!(out.contains("switch-first-delivery"), "{out}");
        assert!(!out.contains("switch-requested"), "evicted event must not appear: {out}");
    }
}
