//! The unified `TelemetryReport`: one shape, emitted by all three
//! hosts.
//!
//! `Sim::telemetry_report()`, `Runtime::telemetry_report()`, and
//! `Reactor::telemetry_report()` all fold their per-stack
//! [`crate::StackTelemetry`] partials through a [`TelemetryAggregate`]
//! and emit this struct — so an operator (or a bench harness) reads the
//! same fields whatever host ran the stacks. The host-specific counter
//! families the repo used to print ad hoc — `ScratchStats`,
//! `TransportStats`, `ReactorStats` — arrive here as plain counter
//! mirrors ([`WireCounters`], [`TransportCounters`], [`SocketCounters`])
//! so this crate stays below `dpu-core` in the dependency graph.
//!
//! `Display` renders the human block; [`TelemetryReport::to_json`]
//! renders the machine form through [`crate::json::JsonWriter`].

use crate::hist::{HistSummary, Histogram};
use crate::json::JsonWriter;
use crate::timeline::SwitchTimeline;
use crate::StackTelemetry;
use std::fmt;

/// Mirror of `dpu_core::wire::ScratchStats` (per-stack scratch pools,
/// folded by addition).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireCounters {
    /// Messages encoded through the scratch pools.
    pub emitted: u64,
    /// Messages whose backing buffer was reclaimed.
    pub reclaimed: u64,
    /// Messages that required a new backing allocation.
    pub allocations: u64,
}

/// Mirror of `dpu_core::module::TransportStats` (rp2p reliability,
/// folded by addition).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Data frames retransmitted.
    pub retransmissions: u64,
    /// Frames dropped after exhausting the retransmit cap.
    pub exhausted: u64,
    /// Frames currently awaiting acknowledgement.
    pub unacked: u64,
}

/// Mirror of `dpu_reactor::ReactorStats` (OS-socket edge; zero and
/// absent from Display on the in-memory hosts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SocketCounters {
    /// Frames handed to the send path.
    pub packets_sent: u64,
    /// Frames dropped by the injected loss model.
    pub packets_dropped: u64,
    /// Frames with no peer-table route.
    pub unroutable: u64,
    /// `send_to` errors.
    pub send_errors: u64,
    /// Malformed datagrams dropped on receive.
    pub malformed_dropped: u64,
    /// Well-formed frames for stacks not hosted here.
    pub misdirected: u64,
    /// Datagrams received and decoded.
    pub packets_received: u64,
}

/// Percentile view of the switch-phase timeline across all stacks.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SwitchSummary {
    /// Completed switches (summed over stacks).
    pub completed: u64,
    /// Blackout window (`first_delivery − requested`), nanoseconds.
    pub blackout_ns: HistSummary,
    /// Flush→activate gap, nanoseconds.
    pub swap_gap_ns: HistSummary,
}

/// Host-side fold of per-stack [`StackTelemetry`] partials.
///
/// Built by each host's report path the same way `Sim::wire_stats`
/// folds `ScratchStats`: iterate the stacks, [`absorb`](Self::absorb)
/// each one. Every constituent merges by addition, so the fold is
/// order-independent — shard or worker iteration order cannot change
/// the report.
#[derive(Debug, Default)]
pub struct TelemetryAggregate {
    /// Stacks with telemetry enabled that were folded in.
    pub stacks_enabled: u32,
    /// End-to-end delivery latency, nanoseconds.
    pub delivery_latency: Histogram,
    /// Dispatch-cascade depth (steps per externally-triggered cascade).
    pub cascade_depth: Histogram,
    /// Scratch-pool occupancy at packet arrival, bytes.
    pub scratch_occupancy: Histogram,
    /// rp2p resequencing-buffer depth at out-of-order insert.
    pub reseq_depth: Histogram,
    /// Merged switch timelines.
    pub switches: SwitchTimeline,
    /// Flight-recorder events evicted across all stacks.
    pub flight_dropped: u64,
}

impl TelemetryAggregate {
    /// An empty aggregate.
    pub fn new() -> TelemetryAggregate {
        TelemetryAggregate::default()
    }

    /// Fold one stack's telemetry in (no-op for disabled stacks).
    pub fn absorb(&mut self, t: &StackTelemetry) {
        let Some(state) = t.state() else { return };
        self.stacks_enabled += 1;
        self.delivery_latency.merge(&state.delivery_latency);
        self.cascade_depth.merge(&state.cascade_depth);
        self.scratch_occupancy.merge(&state.scratch_occupancy);
        self.reseq_depth.merge(&state.reseq_depth);
        self.switches.merge(&state.switches);
        self.flight_dropped += state.flight.dropped();
    }

    /// Fold another aggregate into this one (hosts that visit stacks
    /// through per-shard control channels fold one partial per stack).
    pub fn merge(&mut self, other: &TelemetryAggregate) {
        self.stacks_enabled += other.stacks_enabled;
        self.delivery_latency.merge(&other.delivery_latency);
        self.cascade_depth.merge(&other.cascade_depth);
        self.scratch_occupancy.merge(&other.scratch_occupancy);
        self.reseq_depth.merge(&other.reseq_depth);
        self.switches.merge(&other.switches);
        self.flight_dropped += other.flight_dropped;
    }

    /// Condense into the report a host hands to callers.
    pub fn report(&self, host: &'static str, stacks: u32, now_ns: u64) -> TelemetryReport {
        TelemetryReport {
            host,
            stacks,
            stacks_enabled: self.stacks_enabled,
            now_ns,
            delivery_latency_ns: self.delivery_latency.summary(),
            cascade_depth: self.cascade_depth.summary(),
            scratch_occupancy_bytes: self.scratch_occupancy.summary(),
            reseq_depth: self.reseq_depth.summary(),
            switches: SwitchSummary {
                completed: self.switches.completed(),
                blackout_ns: self.switches.blackout().summary(),
                swap_gap_ns: self.switches.swap_gap().summary(),
            },
            flight_dropped: self.flight_dropped,
            wire: WireCounters::default(),
            transport: TransportCounters::default(),
            sockets: None,
        }
    }
}

/// The unified observability report — same shape from Sim, Runtime,
/// and Reactor. Histogram fields are percentile summaries; counter
/// families mirror the host-side stats structs.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryReport {
    /// Which host produced this: `"sim"`, `"runtime"`, or `"reactor"`.
    pub host: &'static str,
    /// Stacks the host drives.
    pub stacks: u32,
    /// Stacks that had telemetry enabled (0 = report is counters-only).
    pub stacks_enabled: u32,
    /// Host clock at report time, nanoseconds (virtual on sim).
    pub now_ns: u64,
    /// End-to-end delivery latency (probe send → adeliver), ns.
    pub delivery_latency_ns: HistSummary,
    /// Dispatch-cascade depth (stack steps per external trigger).
    pub cascade_depth: HistSummary,
    /// Scratch-pool occupancy sampled at packet arrival, bytes.
    pub scratch_occupancy_bytes: HistSummary,
    /// rp2p resequencing-buffer depth at out-of-order insert.
    pub reseq_depth: HistSummary,
    /// Switch-phase timeline percentiles.
    pub switches: SwitchSummary,
    /// Flight-recorder events evicted across all stacks.
    pub flight_dropped: u64,
    /// Scratch-pool counters (`ScratchStats` fold).
    pub wire: WireCounters,
    /// rp2p reliability counters (`TransportStats` fold).
    pub transport: TransportCounters,
    /// OS-socket counters; `None` on the in-memory hosts.
    pub sockets: Option<SocketCounters>,
}

fn write_hist(w: &mut JsonWriter, key: &str, h: &HistSummary) {
    w.key(key)
        .begin_obj()
        .field_u64("count", h.count)
        .field_u64("min", h.min)
        .field_f64("mean", h.mean, 1)
        .field_u64("p50", h.p50)
        .field_u64("p90", h.p90)
        .field_u64("p99", h.p99)
        .field_u64("p999", h.p999)
        .field_u64("max", h.max)
        .end_obj();
}

impl TelemetryReport {
    /// Render the machine-readable form (the shape `BENCH_telemetry.json`
    /// rows embed).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Write this report as a JSON object into an open writer (so bench
    /// rows can embed it under a key).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj()
            .field_str("host", self.host)
            .field_u64("stacks", u64::from(self.stacks))
            .field_u64("stacks_enabled", u64::from(self.stacks_enabled))
            .field_u64("now_ns", self.now_ns);
        write_hist(w, "delivery_latency_ns", &self.delivery_latency_ns);
        write_hist(w, "cascade_depth", &self.cascade_depth);
        write_hist(w, "scratch_occupancy_bytes", &self.scratch_occupancy_bytes);
        write_hist(w, "reseq_depth", &self.reseq_depth);
        w.key("switches").begin_obj().field_u64("completed", self.switches.completed);
        write_hist(w, "blackout_ns", &self.switches.blackout_ns);
        write_hist(w, "swap_gap_ns", &self.switches.swap_gap_ns);
        w.end_obj();
        w.field_u64("flight_dropped", self.flight_dropped);
        w.key("wire")
            .begin_obj()
            .field_u64("emitted", self.wire.emitted)
            .field_u64("reclaimed", self.wire.reclaimed)
            .field_u64("allocations", self.wire.allocations)
            .end_obj();
        w.key("transport")
            .begin_obj()
            .field_u64("retransmissions", self.transport.retransmissions)
            .field_u64("exhausted", self.transport.exhausted)
            .field_u64("unacked", self.transport.unacked)
            .end_obj();
        if let Some(s) = &self.sockets {
            w.key("sockets")
                .begin_obj()
                .field_u64("packets_sent", s.packets_sent)
                .field_u64("packets_dropped", s.packets_dropped)
                .field_u64("unroutable", s.unroutable)
                .field_u64("send_errors", s.send_errors)
                .field_u64("malformed_dropped", s.malformed_dropped)
                .field_u64("misdirected", s.misdirected)
                .field_u64("packets_received", s.packets_received)
                .end_obj();
        }
        w.end_obj();
    }
}

fn fmt_hist(f: &mut fmt::Formatter<'_>, name: &str, unit: &str, h: &HistSummary) -> fmt::Result {
    writeln!(
        f,
        "  {name:<24} n={:<9} p50={} p90={} p99={} p999={} max={} {unit}",
        h.count, h.p50, h.p90, h.p99, h.p999, h.max
    )
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "telemetry [{}]: {} stacks ({} instrumented), t={} ns",
            self.host, self.stacks, self.stacks_enabled, self.now_ns
        )?;
        fmt_hist(f, "delivery latency", "ns", &self.delivery_latency_ns)?;
        fmt_hist(f, "cascade depth", "steps", &self.cascade_depth)?;
        fmt_hist(f, "scratch occupancy", "B", &self.scratch_occupancy_bytes)?;
        fmt_hist(f, "reseq depth", "msgs", &self.reseq_depth)?;
        writeln!(f, "  switches                 completed={}", self.switches.completed)?;
        fmt_hist(f, "  blackout window", "ns", &self.switches.blackout_ns)?;
        fmt_hist(f, "  flush\u{2192}activate gap", "ns", &self.switches.swap_gap_ns)?;
        writeln!(
            f,
            "  wire                     emitted={} reclaimed={} allocations={}",
            self.wire.emitted, self.wire.reclaimed, self.wire.allocations
        )?;
        writeln!(
            f,
            "  transport                retransmissions={} exhausted={} unacked={}",
            self.transport.retransmissions, self.transport.exhausted, self.transport.unacked
        )?;
        if let Some(s) = &self.sockets {
            writeln!(
                f,
                "  sockets                  sent={} recv={} dropped={} unroutable={} \
                 send_errors={} malformed={} misdirected={}",
                s.packets_sent,
                s.packets_received,
                s.packets_dropped,
                s.unroutable,
                s.send_errors,
                s.malformed_dropped,
                s.misdirected
            )?;
        }
        if self.flight_dropped > 0 {
            writeln!(f, "  flight recorder          {} events dropped", self.flight_dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;

    fn sample_report() -> TelemetryReport {
        let mut a = StackTelemetry::new(&TelemetryConfig::default());
        let mut b = StackTelemetry::new(&TelemetryConfig::default());
        for i in 1..=100u64 {
            a.note_delivery(i * 1_000, i * 500);
            b.note_delivery(i * 1_000, i * 700);
        }
        a.switch_requested(10_000);
        a.switch_flushed(12_000);
        a.switch_activated(13_000);
        a.note_delivery(20_000, 400);
        let mut agg = TelemetryAggregate::new();
        agg.absorb(&a);
        agg.absorb(&b);
        let mut report = agg.report("sim", 2, 200_000);
        report.wire = WireCounters { emitted: 10, reclaimed: 8, allocations: 2 };
        report.transport = TransportCounters { retransmissions: 1, exhausted: 0, unacked: 3 };
        report
    }

    #[test]
    fn aggregate_folds_both_stacks() {
        let r = sample_report();
        assert_eq!(r.stacks_enabled, 2);
        assert_eq!(r.delivery_latency_ns.count, 201);
        assert_eq!(r.switches.completed, 1);
        assert_eq!(r.switches.blackout_ns.count, 1);
        assert_eq!(r.switches.blackout_ns.max, 10_000);
    }

    #[test]
    fn disabled_stacks_do_not_count() {
        let off = StackTelemetry::new(&TelemetryConfig::off());
        let mut agg = TelemetryAggregate::new();
        agg.absorb(&off);
        let r = agg.report("runtime", 1, 0);
        assert_eq!(r.stacks_enabled, 0);
        assert_eq!(r.delivery_latency_ns.count, 0);
    }

    #[test]
    fn json_has_every_section_and_parity_on_sockets() {
        let mut r = sample_report();
        let j = r.to_json();
        for key in [
            "\"host\": \"sim\"",
            "\"delivery_latency_ns\"",
            "\"cascade_depth\"",
            "\"scratch_occupancy_bytes\"",
            "\"reseq_depth\"",
            "\"switches\"",
            "\"blackout_ns\"",
            "\"wire\"",
            "\"transport\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(!j.contains("\"sockets\""), "in-memory host must omit sockets");
        r.sockets = Some(SocketCounters { packets_sent: 5, ..SocketCounters::default() });
        assert!(r.to_json().contains("\"sockets\""));
    }

    #[test]
    fn display_mentions_the_headline_numbers() {
        let text = sample_report().to_string();
        assert!(text.contains("telemetry [sim]: 2 stacks (2 instrumented)"), "{text}");
        assert!(text.contains("delivery latency"), "{text}");
        assert!(text.contains("blackout window"), "{text}");
        assert!(text.contains("completed=1"), "{text}");
    }
}
