//! Real-socket host tests: loopback UDP exchange within and across
//! reactors, loss recovery through rp2p, and adversarial socket input
//! (a bound UDP port is open to arbitrary bytes — everything malformed
//! must be a counted drop, never a panic).

use bytes::Bytes;
use dpu_core::stack::{FactoryRegistry, ModuleCtx, Stack, StackConfig};
use dpu_core::wire::{self, Encode};
use dpu_core::{Call, Module, ModuleId, Response, ServiceId, StackId};
use dpu_net::dgram::{self, Dgram};
use dpu_net::rp2p::{Rp2pConfig, Rp2pModule};
use dpu_net::sockframe::SockFrame;
use dpu_net::udp::UdpModule;
use dpu_reactor::{NodeAddr, Reactor, ReactorConfig};
use std::time::{Duration, Instant};

/// Records `rp2p` RECV responses.
struct Rp2pSink {
    got: Vec<Dgram>,
}

impl Module for Rp2pSink {
    fn kind(&self) -> &str {
        "rp2psink"
    }
    fn provides(&self) -> Vec<ServiceId> {
        Vec::new()
    }
    fn requires(&self) -> Vec<ServiceId> {
        vec![ServiceId::new(dpu_net::RP2P_SVC)]
    }
    fn on_call(&mut self, _: &mut ModuleCtx<'_>, _: Call) {}
    fn on_response(&mut self, _: &mut ModuleCtx<'_>, resp: Response) {
        if resp.op == dgram::RECV {
            self.got.push(resp.decode().unwrap());
        }
    }
}

/// Stack layout: m1 net bridge, m2 udp, m3 rp2p, m4 sink.
const SINK: ModuleId = ModuleId(4);

fn mk_stack(sc: StackConfig) -> Stack {
    let mut s = Stack::new(sc, FactoryRegistry::new());
    let udp = s.add_module(Box::new(UdpModule::new()));
    let rp2p = s.add_module(Box::new(Rp2pModule::new(Rp2pConfig::default())));
    s.add_module(Box::new(Rp2pSink { got: vec![] }));
    s.bind(&ServiceId::new(dpu_net::UDP_SVC), udp);
    s.bind(&ServiceId::new(dpu_net::RP2P_SVC), rp2p);
    s
}

fn send(r: &Reactor, from: u32, to: u32, tagbyte: u8) {
    let d = Dgram { peer: StackId(to), channel: 5, data: Bytes::from(vec![tagbyte]) };
    r.with_stack(StackId(from), move |s| {
        s.call_as(SINK, &ServiceId::new(dpu_net::RP2P_SVC), dgram::SEND, wire::to_bytes(&d))
    });
}

fn sink_data(r: &Reactor, node: u32) -> Vec<u8> {
    r.with_stack(StackId(node), |s| {
        s.with_module::<Rp2pSink, _>(SINK, |k| k.got.iter().map(|d| d.data[0]).collect::<Vec<u8>>())
            .unwrap()
    })
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !done() {
        assert!(Instant::now() < deadline, "timeout waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn two_stacks_one_reactor_exchange_over_real_sockets() {
    let r = Reactor::spawn(ReactorConfig::new(2, vec![StackId(0), StackId(1)]), mk_stack)
        .expect("spawn reactor");
    for i in 0..10u8 {
        send(&r, 0, 1, i);
        send(&r, 1, 0, 100 + i);
    }
    wait_until("bidirectional delivery", || {
        sink_data(&r, 1).len() == 10 && sink_data(&r, 0).len() == 10
    });
    // rp2p guarantees FIFO per peer even over a real socket.
    assert_eq!(sink_data(&r, 1), (0..10).collect::<Vec<u8>>());
    assert_eq!(sink_data(&r, 0), (100..110).collect::<Vec<u8>>());
    let stats = r.stats();
    assert!(stats.packets_sent >= 20, "all traffic crosses the socket: {stats:?}");
    assert!(stats.packets_received >= 20);
    assert_eq!(stats.malformed_dropped, 0);
    let stacks = r.shutdown();
    assert_eq!(stacks.len(), 2);
}

#[test]
fn two_reactors_recover_injected_loss_via_rp2p() {
    // Two single-stack reactors in one process — the same peer-table
    // handshake two OS processes would do, minus the fork.
    let mut cfg_a = ReactorConfig::new(2, vec![StackId(0)]);
    cfg_a.loss = 0.4;
    cfg_a.seed = 7;
    let ra = Reactor::spawn(cfg_a, mk_stack).expect("spawn a");
    let mut cfg_b = ReactorConfig::new(2, vec![StackId(1)]);
    cfg_b.loss = 0.4;
    cfg_b.seed = 8;
    let rb = Reactor::spawn(cfg_b, mk_stack).expect("spawn b");
    for &na in ra.local_addrs() {
        rb.set_peer(na);
    }
    for &na in rb.local_addrs() {
        ra.set_peer(na);
    }
    for i in 0..30u8 {
        send(&ra, 0, 1, i);
    }
    wait_until("lossy cross-reactor delivery", || sink_data(&rb, 1).len() == 30);
    assert_eq!(sink_data(&rb, 1), (0..30).collect::<Vec<u8>>());
    // The loss model must have actually dropped frames, and rp2p must
    // have actually retransmitted through the real socket.
    let dropped = ra.stats().packets_dropped + rb.stats().packets_dropped;
    assert!(dropped > 0, "0.4 loss dropped nothing over 30+ frames");
    assert!(ra.transport_stats().retransmissions > 0, "recovery implies retransmissions");
    ra.shutdown();
    rb.shutdown();
}

#[test]
fn junk_datagrams_are_counted_drops_never_panics() {
    let r = Reactor::spawn(ReactorConfig::new(2, vec![StackId(0), StackId(1)]), mk_stack)
        .expect("spawn reactor");
    let target = r.local_addrs()[0].addr;
    let attacker = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind attacker");

    // 1. Arbitrary junk of many lengths (xorshift bytes).
    let mut x = 0xDEADBEEFCAFEF00Du64;
    let mut junk_sent = 0u64;
    for len in 0..64usize {
        let junk: Vec<u8> = (0..len)
            .map(|_| {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                (x >> 32) as u8
            })
            .collect();
        attacker.send_to(&junk, target).expect("send junk");
        junk_sent += 1;
    }
    // 2. Truncations and corruptions of a well-formed frame.
    let good = SockFrame { src: StackId(1), dst: StackId(0), payload: Bytes::from(vec![0xab; 32]) }
        .to_bytes();
    for cut in 0..good.len() {
        attacker.send_to(&good[..cut], target).expect("send truncated");
        junk_sent += 1;
    }
    let mut corrupted = good.to_vec();
    corrupted[0] ^= 0xff; // break the magic
    attacker.send_to(&corrupted, target).expect("send corrupted");
    junk_sent += 1;
    // 3. A well-formed frame for a stack this reactor does not host.
    let misdirected =
        SockFrame { src: StackId(0), dst: StackId(7), payload: Bytes::new() }.to_bytes();
    attacker.send_to(&misdirected, target).expect("send misdirected");

    // The reactor must absorb all of it as counted drops...
    wait_until("junk to be counted", || {
        let s = r.stats();
        // Not every junk datagram is malformed (a 0-length datagram or
        // an unlucky prefix may decode), so compare against a floor.
        s.malformed_dropped + s.packets_received >= junk_sent && s.misdirected >= 1
    });
    // ...and still do its job afterwards.
    for i in 0..5u8 {
        send(&r, 1, 0, i);
    }
    wait_until("normal delivery after junk", || sink_data(&r, 0).len() == 5);
    assert_eq!(sink_data(&r, 0), (0..5).collect::<Vec<u8>>());
    let stats = r.stats();
    assert!(stats.malformed_dropped > 0, "junk must land in the malformed counter: {stats:?}");
    r.shutdown();
}

#[test]
fn idle_reactor_reports_no_deadline_traffic() {
    // A reactor with no pending work parks on epoll with no deadline;
    // spawning + shutting down promptly (no sleeps needed to drain
    // busy loops) is the observable behaviour.
    let r = Reactor::spawn(ReactorConfig::new(1, vec![StackId(0)]), |sc| {
        Stack::new(sc, FactoryRegistry::new())
    })
    .expect("spawn reactor");
    assert_eq!(r.n(), 1);
    assert_eq!(r.local_addrs().len(), 1);
    let t0 = Instant::now();
    let stacks = r.shutdown();
    assert_eq!(stacks.len(), 1);
    assert!(t0.elapsed() < Duration::from_secs(5), "shutdown of an idle reactor stalled");
}

#[test]
fn set_peer_reroutes_unroutable_destinations() {
    let r = Reactor::spawn(ReactorConfig::new(3, vec![StackId(0)]), mk_stack).expect("spawn");
    // Stack 2 is not in the peer table: sends to it are counted drops.
    send(&r, 0, 2, 1);
    wait_until("unroutable counted", || r.stats().unroutable > 0);
    // Add the peer (here: loop it back to ourselves) and the very same
    // rp2p retransmit path delivers the queued frame.
    let me = r.local_addrs()[0].addr;
    r.set_peer(NodeAddr { id: StackId(2), addr: me });
    // Frames for dst=2 now arrive at stack 0's socket but are
    // misdirected (we do not host stack 2) — the point is only that
    // routing switched from `unroutable` to a real send.
    wait_until("frames routed after set_peer", || r.stats().misdirected > 0);
    r.shutdown();
}
