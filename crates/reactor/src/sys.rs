//! Minimal readiness-notification layer: raw `epoll` + `eventfd` FFI.
//!
//! Like the dependency shims under `shims/`, this is a deliberate,
//! documented stand-in for an external crate (`mio`/`libc`) that the
//! offline build cannot fetch. It declares exactly the five libc
//! symbols the reactor needs — `epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`, plus `read`/`write`/`close` on the eventfd
//! — and wraps them in a safe [`Poller`]/[`Waker`] pair. All `unsafe`
//! in the crate lives in this module.
//!
//! # Portability
//!
//! The epoll path is **Linux-only** (the only platform this workspace
//! targets in CI). On other platforms a fallback [`Poller`] with the
//! same API sleep-polls in ~1 ms slices: functionally equivalent —
//! every `wait` reports all registered tokens and the reactor's
//! nonblocking reads sort out who is actually readable — but degraded
//! (up to 1 ms wake latency, ~1 kHz idle polling instead of 0% CPU).
//! The struct layout caveat: the kernel's `struct epoll_event` is
//! packed on x86-64 only; `EpollEvent` mirrors that with a
//! target-conditional `repr(packed)`.

use std::time::Duration;

/// Token value [`Poller::wait`] never reports: reserved for the
/// internal wakeup channel.
pub const WAKE_TOKEN: u64 = u64::MAX;

#[cfg(target_os = "linux")]
pub use linux::{Poller, Waker};

#[cfg(not(target_os = "linux"))]
pub use fallback::{Poller, Waker};

/// Clamp an optional wait budget to epoll's millisecond resolution:
/// `None` blocks forever (-1), `Some` rounds *up* so a deadline is
/// never woken before it is due.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis() + u128::from(d.subsec_nanos() % 1_000_000 != 0);
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
mod linux {
    #![allow(unsafe_code)]

    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Arc;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLLIN: u32 = 0x1;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// Mirror of the kernel's `struct epoll_event`. The kernel ABI
    /// packs this struct on x86-64 only; everywhere else it has
    /// natural alignment — hence the target-conditional packing.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        // `events` is written by the kernel, never read here (the
        // reactor only registers EPOLLIN, so readiness is implied by
        // presence in the output array).
        #[allow(dead_code)]
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// An fd this module opened itself (epoll instance, eventfd);
    /// closed on drop. Sockets stay owned by their `UdpSocket`s.
    struct OwnedFd(i32);

    impl Drop for OwnedFd {
        fn drop(&mut self) {
            // Nothing useful to do on close failure during teardown.
            unsafe { close(self.0) };
        }
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// The epoll-backed readiness poller. One per reactor loop.
    pub struct Poller {
        epfd: OwnedFd,
        wake: Arc<OwnedFd>,
    }

    /// Cross-thread wakeup handle: writing the eventfd makes a
    /// concurrent (or the next) [`Poller::wait`] return immediately.
    /// Holds the eventfd alive via `Arc`, so waking a dropped poller
    /// is a harmless write to a still-open fd, never to a recycled
    /// descriptor.
    #[derive(Clone)]
    pub struct Waker {
        wake: Arc<OwnedFd>,
    }

    impl Waker {
        /// Wake the poller. Infallible by design: the only errors an
        /// eventfd write can produce here (EAGAIN on counter
        /// saturation) still leave the fd readable, i.e. the wakeup
        /// is already pending.
        pub fn wake(&self) {
            let one: u64 = 1;
            let _ = unsafe { write(self.wake.0, (&one as *const u64).cast(), 8) };
        }
    }

    impl Poller {
        /// A fresh epoll instance with its wakeup eventfd registered
        /// under [`super::WAKE_TOKEN`].
        pub fn new() -> io::Result<Poller> {
            let epfd = OwnedFd(cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?);
            let wake = OwnedFd(cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?);
            let poller = Poller { epfd, wake: Arc::new(wake) };
            poller.add(poller.wake.0, super::WAKE_TOKEN)?;
            Ok(poller)
        }

        /// Register interest in readability of `fd`, reported as
        /// `token`. Level-triggered (the reactor drains to
        /// `WouldBlock` anyway). `token` must not be
        /// [`super::WAKE_TOKEN`].
        pub fn register(&self, fd: RawFd, token: u64) -> io::Result<()> {
            debug_assert_ne!(token, super::WAKE_TOKEN, "token reserved for the waker");
            self.add(fd, token)
        }

        fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events: EPOLLIN, data: token };
            cvt(unsafe { epoll_ctl(self.epfd.0, EPOLL_CTL_ADD, fd, &mut ev) })?;
            Ok(())
        }

        /// A wakeup handle usable from any thread.
        pub fn waker(&self) -> Waker {
            Waker { wake: Arc::clone(&self.wake) }
        }

        /// Block until an fd is readable, the waker fires, or
        /// `timeout` elapses (`None` = forever). Fills `ready` with
        /// the tokens of readable fds; a wakeup is drained internally
        /// and produces no token (callers check their command queue
        /// every iteration regardless).
        pub fn wait(&self, ready: &mut Vec<u64>, timeout: Option<Duration>) -> io::Result<()> {
            ready.clear();
            let mut events = [EpollEvent { events: 0, data: 0 }; 64];
            let n = loop {
                let r = unsafe {
                    epoll_wait(
                        self.epfd.0,
                        events.as_mut_ptr(),
                        events.len() as i32,
                        super::timeout_ms(timeout),
                    )
                };
                match r {
                    -1 if io::Error::last_os_error().kind() == io::ErrorKind::Interrupted => {
                        continue;
                    }
                    -1 => return Err(io::Error::last_os_error()),
                    n => break n as usize,
                }
            };
            for ev in &events[..n] {
                // Copy out of the (possibly packed) struct before use.
                let token = ev.data;
                if token == super::WAKE_TOKEN {
                    // Reset the eventfd counter; EAGAIN (lost the race
                    // to another drain) is fine.
                    let mut buf = [0u8; 8];
                    let _ = unsafe { read(self.wake.0, buf.as_mut_ptr(), 8) };
                } else {
                    ready.push(token);
                }
            }
            Ok(())
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod fallback {
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    /// Portable fallback poller: no readiness syscall, so `wait`
    /// sleep-polls in ~1 ms slices and reports *every* registered
    /// token; the reactor's nonblocking reads establish actual
    /// readiness. Degraded but correct — see the module docs.
    pub struct Poller {
        tokens: Mutex<Vec<u64>>,
        woken: Arc<AtomicBool>,
    }

    /// Cross-thread wakeup handle for the fallback poller.
    #[derive(Clone)]
    pub struct Waker {
        woken: Arc<AtomicBool>,
    }

    impl Waker {
        /// Make the current (within its next 1 ms slice) or next
        /// `wait` return immediately.
        pub fn wake(&self) {
            self.woken.store(true, Ordering::SeqCst);
        }
    }

    const SLICE: Duration = Duration::from_millis(1);

    impl Poller {
        /// A fresh fallback poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { tokens: Mutex::new(Vec::new()), woken: Arc::new(AtomicBool::new(false)) })
        }

        /// Remember `token`; the fd itself is not used (readiness is
        /// probed by the caller's nonblocking reads).
        pub fn register(&self, _fd: RawFd, token: u64) -> io::Result<()> {
            self.tokens.lock().unwrap_or_else(|e| e.into_inner()).push(token);
            Ok(())
        }

        /// A wakeup handle usable from any thread.
        pub fn waker(&self) -> Waker {
            Waker { woken: Arc::clone(&self.woken) }
        }

        /// Sleep-poll until woken or `timeout` elapses, then report
        /// all registered tokens as (possibly) ready.
        pub fn wait(&self, ready: &mut Vec<u64>, timeout: Option<Duration>) -> io::Result<()> {
            let deadline = timeout.map(|t| Instant::now() + t);
            while !self.woken.swap(false, Ordering::SeqCst) {
                let slice = match deadline {
                    Some(d) => match d.checked_duration_since(Instant::now()) {
                        Some(left) if !left.is_zero() => left.min(SLICE),
                        _ => break,
                    },
                    None => SLICE,
                };
                std::thread::sleep(slice);
                break; // one slice per wait: the caller re-probes sockets
            }
            ready.clear();
            ready.extend_from_slice(&self.tokens.lock().unwrap_or_else(|e| e.into_inner()));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_ms_rounds_up_and_clamps() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_nanos(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(7))), 7);
        assert_eq!(timeout_ms(Some(Duration::from_micros(7_001))), 8);
        assert_eq!(timeout_ms(Some(Duration::from_secs(u64::MAX))), i32::MAX);
    }

    #[test]
    fn waker_interrupts_a_long_wait() {
        let poller = Poller::new().expect("poller");
        let waker = poller.waker();
        let t0 = std::time::Instant::now();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut ready = Vec::new();
        poller.wait(&mut ready, Some(Duration::from_secs(30))).expect("wait");
        assert!(t0.elapsed() < Duration::from_secs(10), "waker did not interrupt wait");
        assert!(!ready.contains(&WAKE_TOKEN));
        h.join().unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn registered_udp_socket_reports_readable() {
        use std::os::fd::AsRawFd;
        let rx = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind");
        rx.set_nonblocking(true).expect("nonblocking");
        let tx = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind");
        let poller = Poller::new().expect("poller");
        poller.register(rx.as_raw_fd(), 7).expect("register");
        tx.send_to(b"x", rx.local_addr().unwrap()).expect("send");
        let mut ready = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            poller.wait(&mut ready, Some(Duration::from_millis(100))).expect("wait");
            if ready.contains(&7) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "datagram never became readable");
        }
    }
}
