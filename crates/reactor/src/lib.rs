//! # dpu-reactor — an epoll-backed real-socket host for DPU stacks
//!
//! The third host of the workspace, after the deterministic simulator
//! (`dpu-sim`) and the in-process sharded runtime (`dpu-runtime`): one
//! event-loop thread multiplexing N stacks whose network is **real
//! nonblocking UDP sockets** over loopback (or any interface), so a
//! protocol group can span OS processes. The same [`StackDriver`]
//! drives the stacks — protocol modules cannot tell which host they
//! run under; only the `ActionSink` behind `NetSend` changes.
//!
//! ```text
//!        ┌───────────── reactor thread ──────────────┐
//!        │ epoll_wait(sockets…, eventfd, deadline)   │
//!        │   ├─ readable socket → recv_from drain    │
//!        │   │    └─ SockFrame decode → inject       │
//!        │   ├─ eventfd → command queue (with_stack, │
//!        │   │    set_peer, stop)                    │
//!        │   └─ deadline → StackDriver::poll         │
//!        └───────────────────────────────────────────┘
//! ```
//!
//! * Each hosted stack owns one nonblocking `UdpSocket`; frames are
//!   [`dpu_net::sockframe::SockFrame`] envelopes carrying
//!   `(src, dst, payload)`, encoded through a scratch-pooled
//!   [`dpu_net::sockframe::FrameCodec`].
//! * A [`NodeAddr`] peer table maps every [`StackId`] of the group —
//!   local or in another process — to its `SocketAddr`; **all** sends
//!   go through a real `send_to`, even stack-to-stack within one
//!   reactor, so the loopback path is exercised end to end.
//! * Timer deadlines come from [`StackDriver::poll`]'s [`Wakeup`] and
//!   become the `epoll_wait` timeout; an idle reactor blocks with no
//!   deadline and burns no CPU.
//! * Cross-thread commands ([`Reactor::with_stack`], peer updates,
//!   shutdown) ride a channel paired with an eventfd wakeup.
//! * Socket input is untrusted: malformed datagrams are counted drops
//!   ([`ReactorStats`]), never panics. Send-side probabilistic loss
//!   ([`ReactorConfig::loss`]) injects faults for rp2p to recover.
//!
//! The raw `epoll`/`eventfd` FFI lives in [`sys`] — Linux-only, with a
//! documented degraded fallback elsewhere (see that module's docs).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod sys;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError};
use dpu_core::host::{ActionSink, HostEvent, StackDriver, Wakeup};
use dpu_core::time::Time;
use dpu_core::{Stack, StackConfig, StackId, TelemetryConfig};
use std::any::Any;
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One row of the peer table: where a stack of the group lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeAddr {
    /// The stack.
    pub id: StackId,
    /// Its socket address (loopback in the demos, but any address
    /// works).
    pub addr: SocketAddr,
}

/// Configuration of a reactor: which slice of an `n`-stack group this
/// process hosts.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Total group size. Peer lists of the hosted stacks span the full
    /// group, exactly as under the other hosts.
    pub n: u32,
    /// The stacks hosted by *this* reactor (any subset of `0..n`).
    /// Each gets its own UDP socket on `bind_addr`.
    pub local: Vec<StackId>,
    /// Bind address for the local sockets; port 0 (the default via
    /// [`ReactorConfig::new`]) lets the OS pick. Actual addresses are
    /// reported by [`Reactor::local_addrs`].
    pub bind_addr: SocketAddr,
    /// Seed mixed into each stack's deterministic RNG stream.
    pub seed: u64,
    /// Probability of dropping an outbound datagram before `send_to`
    /// (fault injection; the wire itself is loopback-reliable, so this
    /// is how the demos exercise rp2p recovery).
    pub loss: f64,
    /// Record stack traces.
    pub trace: bool,
    /// Per-stack observability (histograms, switch timeline, flight
    /// recorder). On by default like under the other hosts.
    pub telemetry: TelemetryConfig,
}

impl ReactorConfig {
    /// Host `local` of an `n`-stack group on OS-assigned loopback
    /// ports, no fault injection.
    pub fn new(n: u32, local: Vec<StackId>) -> ReactorConfig {
        ReactorConfig {
            n,
            local,
            bind_addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            seed: 0,
            loss: 0.0,
            trace: false,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// Aggregate counters of one reactor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Frames handed to the send path.
    pub packets_sent: u64,
    /// Frames dropped by the injected loss model (before `send_to`).
    pub packets_dropped: u64,
    /// Frames dropped because the destination has no peer-table entry.
    pub unroutable: u64,
    /// `send_to` errors (counted and dropped; rp2p recovers).
    pub send_errors: u64,
    /// Received datagrams that were not well-formed
    /// [`SockFrame`](dpu_net::sockframe::SockFrame)s
    /// (junk, truncation, corruption, wrong magic) — counted, never
    /// panicked on.
    pub malformed_dropped: u64,
    /// Well-formed frames whose destination is not hosted here.
    pub misdirected: u64,
    /// Datagrams received and decoded successfully.
    pub packets_received: u64,
}

#[derive(Default)]
struct StatsInner {
    packets_sent: AtomicU64,
    packets_dropped: AtomicU64,
    unroutable: AtomicU64,
    send_errors: AtomicU64,
    malformed_dropped: AtomicU64,
    misdirected: AtomicU64,
    packets_received: AtomicU64,
}

type StackFn = Box<dyn FnOnce(&mut Stack) -> Box<dyn Any + Send> + Send>;

enum Cmd {
    /// Run a closure against a local stack, reply with the result.
    Ctl { dst: StackId, f: StackFn, reply: Sender<Box<dyn Any + Send>> },
    /// Insert/replace a peer-table row.
    SetPeer(NodeAddr),
    /// Report the loop's scratch-pool counters (every encode on this
    /// reactor runs under the pool loan).
    PoolStats { reply: Sender<dpu_core::wire::ScratchStats> },
    /// Stop the loop and return the stacks.
    Stop,
}

/// The send path: executes drivers' `NetSend`s as real datagrams. Split
/// out of the loop state so it can be the `ActionSink` while the
/// drivers are borrowed.
struct Wire {
    sockets: Vec<UdpSocket>,
    /// Socket index of each local stack (sends leave the sender's own
    /// socket).
    index_of: BTreeMap<StackId, usize>,
    /// `StackId::idx() → SocketAddr` for the whole group.
    peers: Vec<Option<SocketAddr>>,
    codec: dpu_net::sockframe::FrameCodec,
    stats: Arc<StatsInner>,
    loss: f64,
    rng: u64,
}

impl Wire {
    fn next_rand(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl ActionSink for Wire {
    fn net_send(&mut self, _at: Time, src: StackId, dst: StackId, payload: Bytes) {
        self.stats.packets_sent.fetch_add(1, Ordering::Relaxed);
        if self.loss > 0.0 && self.next_rand() < self.loss {
            self.stats.packets_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let Some(&Some(addr)) = self.peers.get(dst.idx()) else {
            self.stats.unroutable.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let frame = self.codec.encode(src, dst, &payload);
        let sock = self.index_of.get(&src).map(|&i| &self.sockets[i]).unwrap_or(&self.sockets[0]);
        // A full socket buffer or transient OS error is just packet
        // loss to the protocols above — counted, not escalated.
        if sock.send_to(&frame, addr).is_err() {
            self.stats.send_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Largest datagram the reactor accepts (the UDP maximum; the frag
/// module keeps real traffic far below this).
const RECV_BUF: usize = 64 * 1024;

struct Loop {
    ids: Vec<StackId>,
    drivers: Vec<StackDriver>,
    /// Latest wakeup deadline of each driver (`None` = idle).
    deadlines: Vec<Option<Time>>,
    wire: Wire,
    cmds: Receiver<Cmd>,
    poller: sys::Poller,
    start: Instant,
    /// The loop-level encode-buffer pool, loaned to whichever driver is
    /// being polled (see [`dpu_core::stack::Stack::swap_scratch`]): one
    /// retained pool per reactor instead of one per stack.
    pool: dpu_core::wire::WireScratch,
    /// The shard-level dispatch-queue buffer, loaned alongside the
    /// encode pool: cascade burst capacity scales with the loop, not
    /// the stack count.
    qpool: dpu_core::stack::DispatchBuf,
}

impl Loop {
    fn now(&self) -> Time {
        Time(self.start.elapsed().as_nanos() as u64)
    }

    fn run(mut self) -> Vec<(StackId, Stack)> {
        // Service start-up work (on_start handlers, first timers).
        for i in 0..self.drivers.len() {
            self.poll_driver(i);
        }
        let mut ready: Vec<u64> = Vec::new();
        let mut buf = vec![0u8; RECV_BUF];
        loop {
            let timeout = {
                let now = self.now();
                self.deadlines.iter().flatten().min().map(|at| at.since(now).to_std())
            };
            if self.poller.wait(&mut ready, timeout).is_err() {
                // An epoll failure is unrecoverable for the loop;
                // returning the stacks (instead of looping on the
                // error) at least lets shutdown proceed.
                break;
            }
            loop {
                match self.cmds.try_recv() {
                    Ok(Cmd::Stop) => return self.into_stacks(),
                    Ok(Cmd::Ctl { dst, f, reply }) => {
                        let local = self.local_idx(dst);
                        // Loan the pool: the closure may encode.
                        self.drivers[local].swap_scratch(&mut self.pool);
                        self.drivers[local].swap_queue(&mut self.qpool);
                        let r = f(self.drivers[local].stack_mut());
                        self.drivers[local].swap_scratch(&mut self.pool);
                        self.drivers[local].swap_queue(&mut self.qpool);
                        let _ = reply.send(r);
                        // The closure may have queued work or actions.
                        self.poll_driver(local);
                    }
                    Ok(Cmd::PoolStats { reply }) => {
                        let _ = reply.send(self.pool.stats());
                    }
                    Ok(Cmd::SetPeer(p)) => {
                        if p.id.idx() < self.wire.peers.len() {
                            self.wire.peers[p.id.idx()] = Some(p.addr);
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return self.into_stacks(),
                }
            }
            let now = self.now();
            for &token in &ready {
                Self::drain_socket(
                    &mut self.wire,
                    &mut self.drivers,
                    &mut self.pool,
                    &mut self.qpool,
                    token as usize,
                    &mut buf,
                    now,
                );
            }
            // Poll every driver that got input or whose deadline is
            // due. (Drivers swallow injected events on poll, so a
            // spurious poll of an idle driver is just a cheap no-op —
            // poll all of them rather than tracking who was touched.)
            for i in 0..self.drivers.len() {
                self.poll_driver(i);
            }
        }
        self.into_stacks()
    }

    /// Read every queued datagram off one socket, decode, and inject
    /// into the destination driver.
    fn drain_socket(
        wire: &mut Wire,
        drivers: &mut [StackDriver],
        pool: &mut dpu_core::wire::WireScratch,
        qpool: &mut dpu_core::stack::DispatchBuf,
        sock_i: usize,
        buf: &mut [u8],
        now: Time,
    ) {
        loop {
            let len = match wire.sockets[sock_i].recv_from(buf) {
                Ok((len, _from)) => len,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Transient receive errors (e.g. ICMP-reflected
                // ECONNREFUSED on loopback) are loss, not failure.
                Err(_) => continue,
            };
            let Some(frame) = wire.codec.decode(&buf[..len]) else {
                wire.stats.malformed_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let Some(&local) = wire.index_of.get(&frame.dst) else {
                wire.stats.misdirected.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            wire.stats.packets_received.fetch_add(1, Ordering::Relaxed);
            drivers[local].inject(HostEvent::Packet { src: frame.src, payload: frame.payload });
            // One packet, one full dispatch cascade — matching the sim
            // and the sharded runtime. Injecting a whole epoll batch
            // before polling would interleave the cascades of
            // consecutive packets in the stack's breadth-first queue,
            // letting a packet overtake the module-creation reactions
            // of the packet before it (fatal across a protocol switch).
            drivers[local].swap_scratch(pool);
            drivers[local].swap_queue(qpool);
            let _ = drivers[local].poll(now, wire);
            drivers[local].swap_scratch(pool);
            drivers[local].swap_queue(qpool);
        }
    }

    /// Run one driver's canonical drive loop (under the scratch-pool
    /// loan — dispatched handlers encode); remember its next deadline
    /// for the epoll timeout.
    fn poll_driver(&mut self, local: usize) {
        let now = self.now();
        self.drivers[local].swap_scratch(&mut self.pool);
        self.drivers[local].swap_queue(&mut self.qpool);
        let wakeup = self.drivers[local].poll(now, &mut self.wire);
        self.drivers[local].swap_scratch(&mut self.pool);
        self.drivers[local].swap_queue(&mut self.qpool);
        self.deadlines[local] = match wakeup {
            Wakeup::Idle => None,
            Wakeup::At(at) => Some(at),
        };
    }

    fn local_idx(&self, id: StackId) -> usize {
        *self.wire.index_of.get(&id).expect("stack is hosted by this reactor")
    }

    fn into_stacks(self) -> Vec<(StackId, Stack)> {
        self.ids.into_iter().zip(self.drivers.into_iter().map(StackDriver::into_stack)).collect()
    }
}

/// The real-socket host. See crate docs.
pub struct Reactor {
    cmds: Sender<Cmd>,
    waker: sys::Waker,
    thread: Option<JoinHandle<Vec<(StackId, Stack)>>>,
    local: Vec<NodeAddr>,
    n: u32,
    start: Instant,
    stats: Arc<StatsInner>,
}

impl Reactor {
    /// Bind one UDP socket per local stack, build the stacks with
    /// `mk_stack` (called on the spawning thread, in the order of
    /// `cfg.local`), and start the event-loop thread.
    ///
    /// The peer table starts with the local stacks' own (just-bound)
    /// addresses; remote peers are added with [`Reactor::set_peer`]
    /// after the processes exchange their [`Reactor::local_addrs`].
    pub fn spawn(
        cfg: ReactorConfig,
        mut mk_stack: impl FnMut(StackConfig) -> Stack,
    ) -> io::Result<Reactor> {
        let start = Instant::now();
        let poller = sys::Poller::new()?;
        let mut sockets = Vec::with_capacity(cfg.local.len());
        let mut index_of = BTreeMap::new();
        let mut peers: Vec<Option<SocketAddr>> = vec![None; cfg.n as usize];
        let mut local = Vec::with_capacity(cfg.local.len());
        let mut ids = Vec::with_capacity(cfg.local.len());
        let mut drivers = Vec::with_capacity(cfg.local.len());
        let peer_table = StackConfig::peer_table(cfg.n);
        for (i, &id) in cfg.local.iter().enumerate() {
            let sock = UdpSocket::bind(cfg.bind_addr)?;
            sock.set_nonblocking(true)?;
            poller.register(sock.as_raw_fd(), i as u64)?;
            let addr = sock.local_addr()?;
            peers[id.idx()] = Some(addr);
            local.push(NodeAddr { id, addr });
            sockets.push(sock);
            index_of.insert(id, i);
            let sc = StackConfig {
                id,
                peers: Arc::clone(&peer_table),
                seed: cfg.seed,
                trace: cfg.trace,
                // Like the live runtime: no topology model.
                cluster_size: None,
                telemetry: cfg.telemetry,
            };
            ids.push(id);
            drivers.push(StackDriver::new(mk_stack(sc)));
        }
        let stats = Arc::new(StatsInner::default());
        let (tx, rx) = unbounded::<Cmd>();
        let waker = poller.waker();
        let n_local = drivers.len();
        let lp = Loop {
            ids,
            drivers,
            deadlines: vec![None; n_local],
            wire: Wire {
                sockets,
                index_of,
                peers,
                codec: dpu_net::sockframe::FrameCodec::new(),
                stats: Arc::clone(&stats),
                loss: cfg.loss,
                rng: cfg.seed ^ 0x9E3779B97F4A7C15 | 1,
            },
            cmds: rx,
            poller,
            start,
            pool: dpu_core::wire::WireScratch::shard_pool(),
            qpool: dpu_core::stack::DispatchBuf::new(),
        };
        let thread =
            std::thread::Builder::new().name("dpu-reactor".into()).spawn(move || lp.run())?;
        Ok(Reactor { cmds: tx, waker, thread: Some(thread), local, n: cfg.n, start, stats })
    }

    /// Total group size.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Wall-clock time since the reactor started, as virtual [`Time`]
    /// (the same clock the loop stamps events with).
    pub fn now(&self) -> Time {
        Time(self.start.elapsed().as_nanos() as u64)
    }

    /// The hosted stacks and the addresses their sockets actually
    /// bound (ports resolved), for exchanging with other processes.
    pub fn local_addrs(&self) -> &[NodeAddr] {
        &self.local
    }

    /// Insert or replace a peer-table row. Frames to unknown peers are
    /// counted as [`ReactorStats::unroutable`] and dropped, so peers
    /// may be added while traffic is already flowing.
    pub fn set_peer(&self, peer: NodeAddr) {
        let _ = self.cmds.send(Cmd::SetPeer(peer));
        self.waker.wake();
    }

    /// Run a closure against a hosted stack (on the reactor thread)
    /// and return the result. Blocks until serviced; must be called
    /// from outside the reactor thread.
    pub fn with_stack<R: Send + 'static>(
        &self,
        id: StackId,
        f: impl FnOnce(&mut Stack) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = bounded(1);
        let wrapped: StackFn = Box::new(move |s| Box::new(f(s)) as Box<dyn Any + Send>);
        self.cmds.send(Cmd::Ctl { dst: id, f: wrapped, reply: tx }).expect("reactor alive");
        self.waker.wake();
        let boxed = rx.recv().expect("reactor replies");
        *boxed.downcast::<R>().expect("result type")
    }

    /// Snapshot of the socket-path counters.
    pub fn stats(&self) -> ReactorStats {
        ReactorStats {
            packets_sent: self.stats.packets_sent.load(Ordering::Relaxed),
            packets_dropped: self.stats.packets_dropped.load(Ordering::Relaxed),
            unroutable: self.stats.unroutable.load(Ordering::Relaxed),
            send_errors: self.stats.send_errors.load(Ordering::Relaxed),
            malformed_dropped: self.stats.malformed_dropped.load(Ordering::Relaxed),
            misdirected: self.stats.misdirected.load(Ordering::Relaxed),
            packets_received: self.stats.packets_received.load(Ordering::Relaxed),
        }
    }

    /// Aggregate [`dpu_core::wire::ScratchStats`] over the hosted
    /// stacks' scratch pools.
    pub fn wire_stats(&self) -> dpu_core::wire::ScratchStats {
        let mut total = self.pool_stats();
        for na in &self.local {
            total.absorb(self.with_stack(na.id, |s| s.wire_stats()));
        }
        total
    }

    /// The loop-level scratch pool's counters — where every encode of
    /// this reactor lands under the loan discipline (the per-stack
    /// residuals summed by [`Reactor::wire_stats`] stay zero).
    fn pool_stats(&self) -> dpu_core::wire::ScratchStats {
        let (tx, rx) = bounded(1);
        self.cmds.send(Cmd::PoolStats { reply: tx }).expect("reactor alive");
        self.waker.wake();
        rx.recv().expect("reactor replies")
    }

    /// Aggregate [`dpu_core::TransportStats`] over the hosted stacks
    /// (rp2p retransmissions / exhaustion / unacked backlog — the
    /// loss-recovery health of the socket path).
    pub fn transport_stats(&self) -> dpu_core::TransportStats {
        let mut total = dpu_core::TransportStats::default();
        for na in &self.local {
            total.absorb(self.with_stack(na.id, |s| s.transport_stats()));
        }
        total
    }

    /// Unified telemetry snapshot across the hosted stacks: the
    /// histogram families and switch-phase timeline plus wire,
    /// transport, *and* socket-path counters ([`ReactorStats`] folded
    /// into the host-agnostic report as its `sockets` block).
    /// Shape-identical to `Sim::telemetry_report` and
    /// `Runtime::telemetry_report`.
    ///
    /// Must be called from outside the reactor thread.
    pub fn telemetry_report(&self) -> dpu_core::telemetry::TelemetryReport {
        let mut agg = dpu_core::telemetry::TelemetryAggregate::new();
        let mut wire = dpu_core::wire::ScratchStats::default();
        let mut transport = dpu_core::TransportStats::default();
        for na in &self.local {
            let (part, w, t) = self.with_stack(na.id, |s| {
                let mut part = dpu_core::telemetry::TelemetryAggregate::new();
                part.absorb(s.telemetry());
                (part, s.wire_stats(), s.transport_stats())
            });
            agg.merge(&part);
            wire.absorb(w);
            transport.absorb(t);
        }
        wire.absorb(self.pool_stats());
        let mut report = agg.report("reactor", self.local.len() as u32, self.now().as_nanos());
        report.wire = dpu_core::telemetry::WireCounters {
            emitted: wire.emitted,
            reclaimed: wire.reclaimed,
            allocations: wire.allocations,
        };
        report.transport = dpu_core::telemetry::TransportCounters {
            retransmissions: transport.retransmissions,
            exhausted: transport.exhausted,
            unacked: transport.unacked,
        };
        let r = self.stats();
        report.sockets = Some(dpu_core::telemetry::SocketCounters {
            packets_sent: r.packets_sent,
            packets_dropped: r.packets_dropped,
            unroutable: r.unroutable,
            send_errors: r.send_errors,
            malformed_dropped: r.malformed_dropped,
            misdirected: r.misdirected,
            packets_received: r.packets_received,
        });
        report
    }

    /// Dump every hosted stack's flight recorder (most recent events,
    /// oldest first, with drop counts) — the postmortem a failing soak
    /// or crashed child process prints.
    ///
    /// Must be called from outside the reactor thread.
    pub fn dump_flight_recorders(&self) -> String {
        let mut out = String::new();
        for na in &self.local {
            let chunk = self.with_stack(na.id, move |s| {
                let mut buf = String::new();
                s.telemetry().dump_flight(&format!("stack {}", s.id().0), &mut buf);
                buf
            });
            out.push_str(&chunk);
        }
        out
    }

    /// Stop the loop thread and return the hosted stacks in the order
    /// of `cfg.local`.
    pub fn shutdown(mut self) -> Vec<Stack> {
        let _ = self.cmds.send(Cmd::Stop);
        self.waker.wake();
        match self.thread.take() {
            Some(t) => t.join().expect("reactor thread").into_iter().map(|(_, s)| s).collect(),
            None => Vec::new(),
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        // Dropping without `shutdown()` (e.g. on a test panic) must
        // not leak the loop thread.
        let _ = self.cmds.send(Cmd::Stop);
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
